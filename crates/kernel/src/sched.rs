//! Process table and per-cluster CPU allocation.

use std::collections::BTreeMap;

use mpt_soc::ComponentId;
use mpt_units::Seconds;

use crate::{KernelError, Pid, Process, ProcessClass, Result};

/// The default rolling-window span used for per-process utilization and
/// power accounting (the paper uses a one-second window).
pub const DEFAULT_WINDOW: Seconds = Seconds::new(1.0);

/// One process's share of a cluster's cycle capacity for a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Allocation {
    /// The process.
    pub pid: Pid,
    /// Cycles actually granted this tick.
    pub delivered: f64,
    /// Cycles the process asked for.
    pub demanded: f64,
}

/// Max–min fair allocation of `capacity` cycles among competing demands.
///
/// Small demands are fully served first; the remaining capacity is split
/// evenly among the still-hungry processes (water-filling). This is the
/// fairness model of the Linux CFS scheduler at equal weights.
///
/// # Examples
///
/// ```
/// use mpt_kernel::{allocate_max_min, Pid};
///
/// let demands = [(Pid::new(1), 10.0), (Pid::new(2), 100.0), (Pid::new(3), 100.0)];
/// let out = allocate_max_min(&demands, 110.0);
/// assert_eq!(out[0].delivered, 10.0); // small demand fully served
/// assert_eq!(out[1].delivered, 50.0); // remainder split evenly
/// assert_eq!(out[2].delivered, 50.0);
/// ```
#[must_use]
pub fn allocate_max_min(demands: &[(Pid, f64)], capacity: f64) -> Vec<Allocation> {
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&i, &j| {
        demands[i]
            .1
            .partial_cmp(&demands[j].1)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut result = vec![
        Allocation {
            pid: Pid::new(0),
            delivered: 0.0,
            demanded: 0.0
        };
        demands.len()
    ];
    let mut remaining = capacity.max(0.0);
    let mut left = demands.len();
    for &idx in &order {
        let (pid, demand) = demands[idx];
        let demand = demand.max(0.0);
        let fair_share = remaining / left as f64;
        let granted = demand.min(fair_share);
        result[idx] = Allocation {
            pid,
            delivered: granted,
            demanded: demand,
        };
        remaining -= granted;
        left -= 1;
    }
    result
}

/// The process table: spawn, kill, migrate, and per-tick accounting.
///
/// # Examples
///
/// ```
/// use mpt_kernel::{ProcessClass, Scheduler};
/// use mpt_soc::ComponentId;
///
/// let mut sched = Scheduler::new();
/// let pid = sched.spawn("bml", ProcessClass::Background, ComponentId::BigCluster);
/// sched.migrate(pid, ComponentId::LittleCluster)?;
/// assert_eq!(sched.on_cluster(ComponentId::LittleCluster).count(), 1);
/// # Ok::<(), mpt_kernel::KernelError>(())
/// ```
#[derive(Debug, Default)]
pub struct Scheduler {
    processes: BTreeMap<Pid, Process>,
    next_pid: u32,
    window: Option<Seconds>,
}

impl Scheduler {
    /// Creates an empty process table with the default 1 s accounting
    /// window.
    #[must_use]
    pub fn new() -> Self {
        Self {
            processes: BTreeMap::new(),
            next_pid: 1,
            window: None,
        }
    }

    /// Creates a scheduler whose processes use a custom accounting window
    /// (used by the ablation study on the paper's 1 s choice).
    #[must_use]
    pub fn with_window(window: Seconds) -> Self {
        Self {
            processes: BTreeMap::new(),
            next_pid: 1,
            window: Some(window),
        }
    }

    /// Spawns a process on a CPU cluster, returning its pid.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is not a CPU cluster; spawning onto the GPU is
    /// a programming error (GPU work is expressed through the workload's
    /// GPU demand instead).
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        class: ProcessClass,
        cluster: ComponentId,
    ) -> Pid {
        assert!(cluster.is_cpu(), "processes run on CPU clusters");
        let pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        let span = self.window.unwrap_or(DEFAULT_WINDOW);
        self.processes
            .insert(pid, Process::new(pid, name, class, cluster, span));
        pid
    }

    /// Removes a process.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`].
    pub fn kill(&mut self, pid: Pid) -> Result<()> {
        self.processes
            .remove(&pid)
            .map(|_| ())
            .ok_or(KernelError::NoSuchProcess { pid })
    }

    /// Moves a process to another CPU cluster.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`] or [`KernelError::NotACpuCluster`].
    pub fn migrate(&mut self, pid: Pid, cluster: ComponentId) -> Result<()> {
        if !cluster.is_cpu() {
            return Err(KernelError::NotACpuCluster { id: cluster });
        }
        let p = self
            .processes
            .get_mut(&pid)
            .ok_or(KernelError::NoSuchProcess { pid })?;
        p.set_cluster(cluster);
        Ok(())
    }

    /// Looks up a process.
    #[must_use]
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.processes.get(&pid)
    }

    /// Looks up a process mutably.
    #[must_use]
    pub fn process_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.processes.get_mut(&pid)
    }

    /// Iterates over all processes in pid order.
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        self.processes.values()
    }

    /// Number of live processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Iterates over the processes currently assigned to `cluster`.
    pub fn on_cluster(&self, cluster: ComponentId) -> impl Iterator<Item = &Process> {
        self.processes
            .values()
            .filter(move |p| p.cluster() == cluster)
    }

    /// Registers a process as real-time (exempt from application-aware
    /// throttling), as the paper's governor allows.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchProcess`].
    pub fn set_realtime(&mut self, pid: Pid, realtime: bool) -> Result<()> {
        self.processes
            .get_mut(&pid)
            .map(|p| p.set_realtime(realtime))
            .ok_or(KernelError::NoSuchProcess { pid })
    }

    /// The non-realtime process with the highest windowed power
    /// consumption — the paper's migration victim selection. Returns
    /// `None` if there is no eligible process with nonzero windowed power.
    #[must_use]
    pub fn most_power_hungry(&self, exclude_cluster: Option<ComponentId>) -> Option<&Process> {
        self.processes
            .values()
            .filter(|p| !p.is_realtime())
            .filter(|p| Some(p.cluster()) != exclude_cluster)
            .filter(|p| p.windowed_power().value() > 0.0)
            .max_by(|a, b| {
                a.windowed_power()
                    .value()
                    .partial_cmp(&b.windowed_power().value())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}

impl<'a> IntoIterator for &'a Scheduler {
    type Item = &'a Process;
    type IntoIter = std::collections::btree_map::Values<'a, Pid, Process>;

    fn into_iter(self) -> Self::IntoIter {
        self.processes.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpt_units::Watts;
    use proptest::prelude::*;

    #[test]
    fn spawn_assigns_unique_pids() {
        let mut s = Scheduler::new();
        let a = s.spawn("a", ProcessClass::Foreground, ComponentId::BigCluster);
        let b = s.spawn("b", ProcessClass::Background, ComponentId::LittleCluster);
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn kill_removes() {
        let mut s = Scheduler::new();
        let a = s.spawn("a", ProcessClass::Foreground, ComponentId::BigCluster);
        s.kill(a).unwrap();
        assert!(s.is_empty());
        assert!(matches!(
            s.kill(a).unwrap_err(),
            KernelError::NoSuchProcess { .. }
        ));
    }

    #[test]
    fn migrate_to_gpu_is_rejected() {
        let mut s = Scheduler::new();
        let a = s.spawn("a", ProcessClass::Foreground, ComponentId::BigCluster);
        assert!(matches!(
            s.migrate(a, ComponentId::Gpu).unwrap_err(),
            KernelError::NotACpuCluster { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "CPU clusters")]
    fn spawn_on_gpu_is_a_bug() {
        let mut s = Scheduler::new();
        let _ = s.spawn("a", ProcessClass::Foreground, ComponentId::Gpu);
    }

    #[test]
    fn on_cluster_filters() {
        let mut s = Scheduler::new();
        let a = s.spawn("a", ProcessClass::Foreground, ComponentId::BigCluster);
        let _b = s.spawn("b", ProcessClass::Background, ComponentId::BigCluster);
        s.migrate(a, ComponentId::LittleCluster).unwrap();
        assert_eq!(s.on_cluster(ComponentId::BigCluster).count(), 1);
        assert_eq!(s.on_cluster(ComponentId::LittleCluster).count(), 1);
    }

    #[test]
    fn most_power_hungry_respects_realtime_exemption() {
        let mut s = Scheduler::new();
        let hungry = s.spawn("hungry", ProcessClass::Background, ComponentId::BigCluster);
        let modest = s.spawn("modest", ProcessClass::Background, ComponentId::BigCluster);
        for _ in 0..10 {
            s.process_mut(hungry)
                .unwrap()
                .record_tick(4.0, Watts::new(2.0), Seconds::new(0.1));
            s.process_mut(modest)
                .unwrap()
                .record_tick(1.0, Watts::new(0.5), Seconds::new(0.1));
        }
        assert_eq!(s.most_power_hungry(None).unwrap().pid(), hungry);
        // Register the hungry one as real-time: the modest one is picked.
        s.set_realtime(hungry, true).unwrap();
        assert_eq!(s.most_power_hungry(None).unwrap().pid(), modest);
    }

    #[test]
    fn most_power_hungry_can_exclude_a_cluster() {
        let mut s = Scheduler::new();
        let big = s.spawn(
            "big-task",
            ProcessClass::Background,
            ComponentId::BigCluster,
        );
        let little = s.spawn(
            "little-task",
            ProcessClass::Background,
            ComponentId::LittleCluster,
        );
        for _ in 0..10 {
            s.process_mut(big)
                .unwrap()
                .record_tick(1.0, Watts::new(0.5), Seconds::new(0.1));
            s.process_mut(little)
                .unwrap()
                .record_tick(4.0, Watts::new(2.0), Seconds::new(0.1));
        }
        // Excluding the little cluster (already-throttled victims) picks
        // the big-cluster process even though it draws less.
        let victim = s
            .most_power_hungry(Some(ComponentId::LittleCluster))
            .unwrap();
        assert_eq!(victim.pid(), big);
    }

    #[test]
    fn most_power_hungry_none_when_all_idle() {
        let mut s = Scheduler::new();
        let _ = s.spawn("idle", ProcessClass::Background, ComponentId::BigCluster);
        assert!(s.most_power_hungry(None).is_none());
    }

    #[test]
    fn allocation_under_capacity_serves_everyone() {
        let demands = [(Pid::new(1), 30.0), (Pid::new(2), 20.0)];
        let out = allocate_max_min(&demands, 100.0);
        assert_eq!(out[0].delivered, 30.0);
        assert_eq!(out[1].delivered, 20.0);
    }

    #[test]
    fn allocation_over_capacity_is_max_min_fair() {
        let demands = [
            (Pid::new(1), 10.0),
            (Pid::new(2), 100.0),
            (Pid::new(3), 100.0),
        ];
        let out = allocate_max_min(&demands, 110.0);
        assert!((out[0].delivered - 10.0).abs() < 1e-9);
        assert!((out[1].delivered - 50.0).abs() < 1e-9);
        assert!((out[2].delivered - 50.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_of_empty_demands() {
        assert!(allocate_max_min(&[], 100.0).is_empty());
    }

    #[test]
    fn allocation_clamps_negative_inputs() {
        let out = allocate_max_min(&[(Pid::new(1), -5.0)], -10.0);
        assert_eq!(out[0].delivered, 0.0);
    }

    proptest! {
        #[test]
        fn prop_allocation_conserves_capacity(
            demands in proptest::collection::vec(0.0_f64..50.0, 1..10),
            capacity in 0.0_f64..100.0,
        ) {
            let demands: Vec<(Pid, f64)> = demands
                .into_iter()
                .enumerate()
                .map(|(i, d)| (Pid::new(i as u32 + 1), d))
                .collect();
            let out = allocate_max_min(&demands, capacity);
            let total: f64 = out.iter().map(|a| a.delivered).sum();
            let demand_total: f64 = demands.iter().map(|(_, d)| d).sum();
            prop_assert!(total <= capacity + 1e-9);
            prop_assert!(total <= demand_total + 1e-9);
            // Work-conserving: if demand exceeds capacity, capacity is
            // fully used, otherwise demand is fully served.
            prop_assert!((total - capacity.min(demand_total)).abs() < 1e-6);
            // No process exceeds its demand.
            for a in &out {
                prop_assert!(a.delivered <= a.demanded + 1e-9);
            }
        }

        #[test]
        fn prop_allocation_is_fair(
            d1 in 0.0_f64..50.0,
            d2 in 0.0_f64..50.0,
            capacity in 1.0_f64..60.0,
        ) {
            // Equal demands get equal shares.
            let out = allocate_max_min(
                &[(Pid::new(1), d1), (Pid::new(2), d1), (Pid::new(3), d2)],
                capacity,
            );
            prop_assert!((out[0].delivered - out[1].delivered).abs() < 1e-9);
        }
    }
}
