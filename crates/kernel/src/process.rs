//! Process records and rolling utilization windows.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use mpt_soc::ComponentId;
use mpt_units::{Seconds, Watts};

/// A process identifier.
///
/// # Examples
///
/// ```
/// use mpt_kernel::Pid;
///
/// let pid = Pid::new(1234);
/// assert_eq!(pid.to_string(), "pid 1234");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pid(u32);

impl Pid {
    /// Creates a pid.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw numeric pid.
    #[must_use]
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// Whether a process is user-facing.
///
/// The paper's key observation is that stock thermal governors throttle
/// the whole system even when a *background* process caused the heating;
/// its proposed governor penalizes only the offender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessClass {
    /// The app the user is interacting with (rendering frames).
    Foreground,
    /// A compute task with no user-visible deadline.
    Background,
}

/// A rolling time-weighted average over a fixed time span.
///
/// The paper's governor "monitor\[s\] the average utilization of each active
/// process for a one-second window … to filter out momentary peaks".
///
/// # Examples
///
/// ```
/// use mpt_kernel::UtilWindow;
/// use mpt_units::Seconds;
///
/// let mut w = UtilWindow::new(Seconds::new(1.0));
/// for _ in 0..10 {
///     w.push(0.5, Seconds::new(0.1));
/// }
/// assert!((w.average() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UtilWindow {
    span: f64,
    samples: VecDeque<(f64, f64)>, // (duration, value)
    total_time: f64,
}

impl UtilWindow {
    /// Creates a window covering the last `span` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `span` is not positive.
    #[must_use]
    pub fn new(span: Seconds) -> Self {
        assert!(span.value() > 0.0, "window span must be positive");
        Self {
            span: span.value(),
            samples: VecDeque::new(),
            total_time: 0.0,
        }
    }

    /// The configured span.
    #[must_use]
    pub fn span(&self) -> Seconds {
        Seconds::new(self.span)
    }

    /// Records `value` held for `dt`.
    pub fn push(&mut self, value: f64, dt: Seconds) {
        let dt = dt.value();
        if dt <= 0.0 {
            return;
        }
        self.samples.push_back((dt, value));
        self.total_time += dt;
        while self.total_time > self.span {
            let excess = self.total_time - self.span;
            let front = self.samples.front_mut().expect("nonempty while over span");
            if front.0 <= excess + 1e-12 {
                self.total_time -= front.0;
                self.samples.pop_front();
            } else {
                front.0 -= excess;
                self.total_time -= excess;
            }
        }
    }

    /// The time-weighted average over the window (0.0 when empty).
    #[must_use]
    pub fn average(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        let weighted: f64 = self.samples.iter().map(|(d, v)| d * v).sum();
        weighted / self.total_time
    }

    /// Whether at least a full span of samples has been observed.
    #[must_use]
    pub fn is_warm(&self) -> bool {
        self.total_time >= self.span - 1e-9
    }

    /// Clears all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.total_time = 0.0;
    }
}

/// A schedulable process: identity, class, cluster affinity and the
/// windows the governors consult.
///
/// # Examples
///
/// ```
/// use mpt_kernel::{ProcessClass, Scheduler};
/// use mpt_soc::ComponentId;
///
/// let mut sched = Scheduler::new();
/// let pid = sched.spawn("bml", ProcessClass::Background, ComponentId::BigCluster);
/// let p = sched.process(pid).unwrap();
/// assert_eq!(p.name(), "bml");
/// assert!(!p.is_realtime());
/// ```
#[derive(Debug, Clone)]
pub struct Process {
    pid: Pid,
    name: String,
    class: ProcessClass,
    cluster: ComponentId,
    realtime: bool,
    util_window: UtilWindow,
    power_window: UtilWindow,
    last_util: f64,
    last_power: Watts,
    migrations: u32,
}

impl Process {
    pub(crate) fn new(
        pid: Pid,
        name: impl Into<String>,
        class: ProcessClass,
        cluster: ComponentId,
        window_span: Seconds,
    ) -> Self {
        Self {
            pid,
            name: name.into(),
            class,
            cluster,
            realtime: false,
            util_window: UtilWindow::new(window_span),
            power_window: UtilWindow::new(window_span),
            last_util: 0.0,
            last_power: Watts::ZERO,
            migrations: 0,
        }
    }

    /// The pid.
    #[must_use]
    pub const fn pid(&self) -> Pid {
        self.pid
    }

    /// The process name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Foreground or background.
    #[must_use]
    pub const fn class(&self) -> ProcessClass {
        self.class
    }

    /// The CPU cluster the process currently runs on.
    #[must_use]
    pub const fn cluster(&self) -> ComponentId {
        self.cluster
    }

    /// Whether the process registered itself as real-time (exempt from
    /// throttling by the paper's governor).
    #[must_use]
    pub const fn is_realtime(&self) -> bool {
        self.realtime
    }

    /// Registers or deregisters real-time status.
    pub fn set_realtime(&mut self, realtime: bool) {
        self.realtime = realtime;
    }

    pub(crate) fn set_cluster(&mut self, cluster: ComponentId) {
        if self.cluster != cluster {
            self.cluster = cluster;
            self.migrations += 1;
        }
    }

    /// How many times the process has been migrated between clusters.
    #[must_use]
    pub const fn migration_count(&self) -> u32 {
        self.migrations
    }

    /// Records the utilization (busy cores) and attributed power for one
    /// tick.
    pub fn record_tick(&mut self, util: f64, power: Watts, dt: Seconds) {
        self.last_util = util;
        self.last_power = power;
        self.util_window.push(util, dt);
        self.power_window.push(power.value(), dt);
    }

    /// Instantaneous utilization from the last tick.
    #[must_use]
    pub const fn last_utilization(&self) -> f64 {
        self.last_util
    }

    /// Instantaneous attributed power from the last tick.
    #[must_use]
    pub const fn last_power(&self) -> Watts {
        self.last_power
    }

    /// Average utilization over the rolling window.
    #[must_use]
    pub fn windowed_utilization(&self) -> f64 {
        self.util_window.average()
    }

    /// Whether a full accounting window has been observed. Rankings based
    /// on a cold window see only an instant of behaviour and are exactly
    /// the "momentary peaks" the paper's window exists to filter.
    #[must_use]
    pub fn window_is_warm(&self) -> bool {
        self.util_window.is_warm()
    }

    /// Average attributed power over the rolling window — the quantity the
    /// paper's governor ranks processes by.
    #[must_use]
    pub fn windowed_power(&self) -> Watts {
        Watts::new(self.power_window.average())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn window_averages_constant_input() {
        let mut w = UtilWindow::new(Seconds::new(1.0));
        for _ in 0..20 {
            w.push(0.7, Seconds::new(0.1));
        }
        assert!((w.average() - 0.7).abs() < 1e-9);
        assert!(w.is_warm());
    }

    #[test]
    fn window_forgets_old_samples() {
        let mut w = UtilWindow::new(Seconds::new(1.0));
        for _ in 0..10 {
            w.push(1.0, Seconds::new(0.1));
        }
        // A full second of zeros should push the ones out entirely.
        for _ in 0..10 {
            w.push(0.0, Seconds::new(0.1));
        }
        assert!(w.average() < 1e-9);
    }

    #[test]
    fn window_filters_momentary_peaks() {
        // The paper's rationale: a one-tick spike must not dominate.
        let mut w = UtilWindow::new(Seconds::new(1.0));
        for _ in 0..9 {
            w.push(0.1, Seconds::new(0.1));
        }
        w.push(4.0, Seconds::new(0.1)); // spike
        assert!(
            w.average() < 0.6,
            "avg {} should damp the spike",
            w.average()
        );
    }

    #[test]
    fn window_handles_partial_evictions() {
        let mut w = UtilWindow::new(Seconds::new(1.0));
        w.push(1.0, Seconds::new(0.8));
        w.push(0.0, Seconds::new(0.6));
        // 0.4 s of the first sample remain: avg = 0.4/1.0.
        assert!((w.average() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_zero_and_cold() {
        let w = UtilWindow::new(Seconds::new(1.0));
        assert_eq!(w.average(), 0.0);
        assert!(!w.is_warm());
    }

    #[test]
    fn zero_dt_pushes_are_ignored() {
        let mut w = UtilWindow::new(Seconds::new(1.0));
        w.push(5.0, Seconds::ZERO);
        assert_eq!(w.average(), 0.0);
    }

    #[test]
    #[should_panic(expected = "span must be positive")]
    fn zero_span_is_a_bug() {
        let _ = UtilWindow::new(Seconds::ZERO);
    }

    #[test]
    fn process_tick_recording() {
        let mut p = Process::new(
            Pid::new(1),
            "game",
            ProcessClass::Foreground,
            ComponentId::BigCluster,
            Seconds::new(1.0),
        );
        for _ in 0..10 {
            p.record_tick(2.0, Watts::new(1.5), Seconds::new(0.1));
        }
        assert!((p.windowed_utilization() - 2.0).abs() < 1e-9);
        assert!((p.windowed_power().value() - 1.5).abs() < 1e-9);
        assert_eq!(p.last_utilization(), 2.0);
        assert_eq!(p.last_power(), Watts::new(1.5));
    }

    #[test]
    fn migration_counting() {
        let mut p = Process::new(
            Pid::new(1),
            "bml",
            ProcessClass::Background,
            ComponentId::BigCluster,
            Seconds::new(1.0),
        );
        p.set_cluster(ComponentId::LittleCluster);
        p.set_cluster(ComponentId::LittleCluster); // no-op
        p.set_cluster(ComponentId::BigCluster);
        assert_eq!(p.migration_count(), 2);
    }

    #[test]
    fn realtime_registration() {
        let mut p = Process::new(
            Pid::new(1),
            "decoder",
            ProcessClass::Background,
            ComponentId::BigCluster,
            Seconds::new(1.0),
        );
        assert!(!p.is_realtime());
        p.set_realtime(true);
        assert!(p.is_realtime());
    }

    proptest! {
        #[test]
        fn prop_window_average_bounded_by_inputs(
            values in proptest::collection::vec(0.0_f64..4.0, 1..50),
        ) {
            let mut w = UtilWindow::new(Seconds::new(1.0));
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in &values {
                w.push(v, Seconds::new(0.05));
                lo = lo.min(v);
                hi = hi.max(v);
            }
            // Only the last 20 samples fit the window, but the average is
            // still bounded by the global extremes.
            prop_assert!(w.average() >= lo - 1e-9);
            prop_assert!(w.average() <= hi + 1e-9);
        }

        #[test]
        fn prop_window_time_never_exceeds_span(
            steps in proptest::collection::vec(0.001_f64..0.5, 1..100),
        ) {
            let mut w = UtilWindow::new(Seconds::new(1.0));
            for dt in steps {
                w.push(1.0, Seconds::new(dt));
                prop_assert!(w.total_time <= 1.0 + 1e-9);
            }
        }
    }
}
