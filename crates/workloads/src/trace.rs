//! Trace-playback workloads: replay a recorded demand schedule.
//!
//! Useful for regression tests (exact, scriptable demand), for replaying
//! demand captured from real devices, and as the deterministic input for
//! property-based tests of the simulator.

use mpt_units::Seconds;

use crate::{Demand, Workload};

/// One segment of a demand trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSegment {
    /// Segment duration.
    pub duration: Seconds,
    /// CPU cycles per second demanded during the segment.
    pub cpu_rate: f64,
    /// Parallelism bound.
    pub cpu_threads: f64,
    /// GPU cycles per second demanded during the segment.
    pub gpu_rate: f64,
}

impl TraceSegment {
    /// A fully idle segment.
    #[must_use]
    pub fn idle(duration: Seconds) -> Self {
        Self {
            duration,
            cpu_rate: 0.0,
            cpu_threads: 0.0,
            gpu_rate: 0.0,
        }
    }

    /// A CPU-only segment.
    #[must_use]
    pub fn cpu(duration: Seconds, rate: f64, threads: f64) -> Self {
        Self {
            duration,
            cpu_rate: rate,
            cpu_threads: threads,
            gpu_rate: 0.0,
        }
    }
}

/// Replays a sequence of [`TraceSegment`]s, optionally looping.
///
/// # Examples
///
/// ```
/// use mpt_workloads::trace::{TraceSegment, TraceWorkload};
/// use mpt_workloads::Workload;
/// use mpt_units::Seconds;
///
/// let mut w = TraceWorkload::new(
///     "burst-then-idle",
///     vec![
///         TraceSegment::cpu(Seconds::new(1.0), 1.0e9, 1.0),
///         TraceSegment::idle(Seconds::new(1.0)),
///     ],
///     true, // loop forever
/// );
/// let busy = w.demand(Seconds::new(0.5), Seconds::from_millis(10.0));
/// let idle = w.demand(Seconds::new(1.5), Seconds::from_millis(10.0));
/// assert!(busy.cpu_cycles > 0.0);
/// assert_eq!(idle.cpu_cycles, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: String,
    segments: Vec<TraceSegment>,
    looping: bool,
    total: f64,
    delivered_cpu: f64,
    delivered_gpu: f64,
}

impl TraceWorkload {
    /// Creates a trace playback.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty or any duration is not positive.
    #[must_use]
    pub fn new(name: impl Into<String>, segments: Vec<TraceSegment>, looping: bool) -> Self {
        assert!(!segments.is_empty(), "a trace needs at least one segment");
        assert!(
            segments.iter().all(|s| s.duration.value() > 0.0),
            "segment durations must be positive"
        );
        let total = segments.iter().map(|s| s.duration.value()).sum();
        Self {
            name: name.into(),
            segments,
            looping,
            total,
            delivered_cpu: 0.0,
            delivered_gpu: 0.0,
        }
    }

    /// The total trace length.
    #[must_use]
    pub fn trace_length(&self) -> Seconds {
        Seconds::new(self.total)
    }

    /// Cycles delivered so far: `(cpu, gpu)`.
    #[must_use]
    pub fn delivered(&self) -> (f64, f64) {
        (self.delivered_cpu, self.delivered_gpu)
    }

    fn segment_at(&self, now: Seconds) -> Option<&TraceSegment> {
        let mut t = now.value();
        if self.looping {
            t = t.rem_euclid(self.total);
        } else if t >= self.total {
            return None;
        }
        let mut acc = 0.0;
        for seg in &self.segments {
            acc += seg.duration.value();
            if t < acc {
                return Some(seg);
            }
        }
        self.segments.last()
    }
}

impl Workload for TraceWorkload {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn demand(&mut self, now: Seconds, dt: Seconds) -> Demand {
        match self.segment_at(now) {
            Some(seg) => Demand {
                cpu_cycles: seg.cpu_rate * dt.value(),
                cpu_threads: seg.cpu_threads,
                gpu_cycles: seg.gpu_rate * dt.value(),
                interaction: false,
            },
            None => Demand::IDLE,
        }
    }

    fn deliver(&mut self, cpu_cycles: f64, gpu_cycles: f64, _now: Seconds, _dt: Seconds) {
        self.delivered_cpu += cpu_cycles.max(0.0);
        self.delivered_gpu += gpu_cycles.max(0.0);
    }

    fn is_finished(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_phase(looping: bool) -> TraceWorkload {
        TraceWorkload::new(
            "t",
            vec![
                TraceSegment::cpu(Seconds::new(1.0), 2.0e9, 2.0),
                TraceSegment::idle(Seconds::new(1.0)),
            ],
            looping,
        )
    }

    #[test]
    fn plays_segments_in_order() {
        let mut w = two_phase(false);
        assert!(w.demand(Seconds::new(0.2), Seconds::new(0.01)).cpu_cycles > 0.0);
        assert_eq!(
            w.demand(Seconds::new(1.5), Seconds::new(0.01)),
            Demand::IDLE
        );
        // Past the end of a non-looping trace: idle.
        assert_eq!(
            w.demand(Seconds::new(5.0), Seconds::new(0.01)),
            Demand::IDLE
        );
    }

    #[test]
    fn looping_wraps_around() {
        let mut w = two_phase(true);
        assert!(w.demand(Seconds::new(2.3), Seconds::new(0.01)).cpu_cycles > 0.0);
        assert_eq!(
            w.demand(Seconds::new(3.5), Seconds::new(0.01)),
            Demand::IDLE
        );
    }

    #[test]
    fn accounts_delivered_cycles() {
        let mut w = two_phase(false);
        w.deliver(1.0e7, 5.0e6, Seconds::ZERO, Seconds::new(0.01));
        w.deliver(-3.0, -2.0, Seconds::ZERO, Seconds::new(0.01));
        assert_eq!(w.delivered(), (1.0e7, 5.0e6));
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_trace_is_a_bug() {
        let _ = TraceWorkload::new("x", vec![], false);
    }

    #[test]
    fn trace_length_sums_segments() {
        assert_eq!(two_phase(false).trace_length(), Seconds::new(2.0));
    }

    proptest! {
        #[test]
        fn prop_looping_demand_is_periodic(t in 0.0_f64..10.0) {
            let mut w1 = two_phase(true);
            let mut w2 = two_phase(true);
            let dt = Seconds::new(0.01);
            let d1 = w1.demand(Seconds::new(t), dt);
            let d2 = w2.demand(Seconds::new(t + 2.0), dt);
            prop_assert_eq!(d1, d2);
        }
    }
}
