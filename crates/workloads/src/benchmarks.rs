//! Benchmark workloads for the Odroid-XU3 experiments (paper Section IV-C):
//! a 3DMark-style two-part GPU benchmark, a Nenamark-style level benchmark,
//! and MiBench `basicmath_large` as the power-hungry background task.

use mpt_units::Seconds;

use crate::{mibench, Demand, FramePipeline, Workload};

/// A 3DMark-style benchmark: Graphics Test 1 followed by Graphics Test 2,
/// each running for a fixed duration with its own per-frame cost. The
/// reported metrics are the median FPS of each test (paper Table II rows
/// "3DMark GT1" / "3DMark GT2").
///
/// # Examples
///
/// ```
/// use mpt_workloads::benchmarks::ThreeDMark;
/// use mpt_workloads::Workload;
/// use mpt_units::Seconds;
///
/// let mut bench = ThreeDMark::new();
/// assert_eq!(bench.name(), "3DMark");
/// assert!(!bench.is_finished());
/// # let _ = bench.demand(Seconds::ZERO, Seconds::from_millis(10.0));
/// ```
#[derive(Debug)]
pub struct ThreeDMark {
    gt1: FramePipeline,
    gt2: FramePipeline,
    gt1_duration: f64,
    gt2_duration: f64,
}

impl ThreeDMark {
    /// GPU cycles per GT1 frame: calibrated so a Mali-T628 at 600 MHz
    /// renders ~97 FPS (the paper's unthrottled baseline).
    pub const GT1_GPU_PER_FRAME: f64 = 6.19e6;
    /// GPU cycles per GT2 frame: ~51 FPS at 600 MHz.
    pub const GT2_GPU_PER_FRAME: f64 = 11.76e6;
    /// CPU cycles per frame: scene preparation and physics on the big
    /// cluster (3DMark's graphics tests keep the CPU meaningfully busy —
    /// the paper's Figure 9a shows the big cluster drawing ~38% of total
    /// power during the benchmark).
    pub const CPU_PER_FRAME: f64 = 12.0e6;

    /// Creates the benchmark with the default 60 s per graphics test.
    #[must_use]
    pub fn new() -> Self {
        Self::with_durations(Seconds::new(60.0), Seconds::new(60.0))
    }

    /// Creates the benchmark with custom test durations.
    ///
    /// # Panics
    ///
    /// Panics if either duration is not positive.
    #[must_use]
    pub fn with_durations(gt1: Seconds, gt2: Seconds) -> Self {
        assert!(
            gt1.value() > 0.0 && gt2.value() > 0.0,
            "durations must be positive"
        );
        // Benchmarks render as fast as possible; an effectively unbounded
        // vsync target keeps the pipeline saturated.
        Self {
            gt1: FramePipeline::new(Self::CPU_PER_FRAME, Self::GT1_GPU_PER_FRAME, 1000.0),
            gt2: FramePipeline::new(Self::CPU_PER_FRAME, Self::GT2_GPU_PER_FRAME, 1000.0),
            gt1_duration: gt1.value(),
            gt2_duration: gt2.value(),
        }
    }

    fn in_gt1(&self, now: Seconds) -> bool {
        now.value() < self.gt1_duration
    }

    /// Median FPS of Graphics Test 1 so far.
    #[must_use]
    pub fn gt1_fps(&self) -> Option<f64> {
        self.gt1.median_fps()
    }

    /// Median FPS of Graphics Test 2 so far.
    #[must_use]
    pub fn gt2_fps(&self) -> Option<f64> {
        self.gt2.median_fps()
    }
}

impl Default for ThreeDMark {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for ThreeDMark {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "3DMark"
    }

    fn demand(&mut self, now: Seconds, dt: Seconds) -> Demand {
        if self.is_finished() {
            return Demand::IDLE;
        }
        let (cpu, gpu) = if self.in_gt1(now) {
            self.gt1.demand(now, dt)
        } else {
            // GT2's pipeline runs on its own clock, offset by GT1's span.
            let local = Seconds::new(now.value() - self.gt1_duration);
            self.gt2.demand(local, dt)
        };
        Demand {
            cpu_cycles: cpu,
            cpu_threads: 2.0,
            gpu_cycles: gpu,
            interaction: false,
        }
    }

    fn deliver(&mut self, cpu_cycles: f64, gpu_cycles: f64, now: Seconds, dt: Seconds) {
        if self.in_gt1(now) {
            self.gt1.deliver(cpu_cycles, gpu_cycles, now, dt);
        } else if !self.is_finished() {
            let local = Seconds::new(now.value() - self.gt1_duration);
            self.gt2.deliver(cpu_cycles, gpu_cycles, local, dt);
        }
    }

    fn is_finished(&self) -> bool {
        // Finished when GT2's local clock has run out; checked through
        // the recorded history rather than wall time so partial delivery
        // cannot end the benchmark early.
        self.gt2
            .rolling_fps(Seconds::new(0.5))
            .is_some_and(|_| false)
            || self.gt2_elapsed() >= self.gt2_duration
    }

    fn median_fps(&self) -> Option<f64> {
        self.gt1_fps()
    }

    fn current_fps(&self) -> Option<f64> {
        // Whichever graphics test is active right now.
        let window = Seconds::new(0.5);
        self.gt2
            .rolling_fps(window)
            .or_else(|| self.gt1.rolling_fps(window))
    }
}

impl ThreeDMark {
    fn gt2_elapsed(&self) -> f64 {
        self.gt2.fps_buckets().len() as f64
    }
}

/// A Nenamark-style benchmark: scene difficulty ramps up continuously and
/// the run terminates when the frame rate drops below the desired level.
/// The score is the (fractional) number of levels sustained at the desired
/// frame rate (paper Table II row "Nenamark3": 3.5 / 3.4 / 3.5 levels).
///
/// Difficulty grows geometrically with the *continuous* level index
/// `x = elapsed / level_duration` (per-frame cost `base · growth^x`), so
/// the score responds smoothly to small capacity differences — exactly the
/// sensitivity the paper's 3.5-vs-3.4 comparison relies on.
#[derive(Debug)]
pub struct Nenamark {
    pipeline: FramePipeline,
    base_gpu_per_frame: f64,
    growth: f64,
    level_duration: f64,
    desired_fps: f64,
    grace: f64,
    elapsed: f64,
    score: f64,
    finished: bool,
}

impl Nenamark {
    /// Creates the benchmark with the calibration used for Table II
    /// (score ≈ 3.5 on an unthrottled Mali-T628 at 600 MHz:
    /// `log₁.₂(600e6 / (30 · 10.5e6)) ≈ 3.54`).
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(10.5e6, 1.2, Seconds::new(40.0), 30.0)
    }

    /// Creates the benchmark with custom difficulty parameters.
    ///
    /// `base_gpu_per_frame` is the cost at level 0, multiplied by
    /// `growth` per level (continuously); the run fails when the rolling
    /// FPS drops below `desired_fps`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not positive or `growth <= 1`.
    #[must_use]
    pub fn with_config(
        base_gpu_per_frame: f64,
        growth: f64,
        level_duration: Seconds,
        desired_fps: f64,
    ) -> Self {
        assert!(base_gpu_per_frame > 0.0, "level cost must be positive");
        assert!(growth > 1.0, "levels must get harder");
        assert!(level_duration.value() > 0.0 && desired_fps > 0.0);
        Self {
            pipeline: FramePipeline::new(0.8e6, base_gpu_per_frame, 1000.0),
            base_gpu_per_frame,
            growth,
            level_duration: level_duration.value(),
            desired_fps,
            grace: 3.0,
            elapsed: 0.0,
            score: 0.0,
            finished: false,
        }
    }

    /// The score: the continuous level index reached before the frame
    /// rate fell below the desired level.
    #[must_use]
    pub fn score(&self) -> f64 {
        self.score
    }

    /// The level currently running (0-based integer part of the
    /// continuous index).
    #[must_use]
    pub fn current_level(&self) -> usize {
        (self.elapsed / self.level_duration) as usize
    }

    /// The per-frame GPU cost at the current difficulty.
    #[must_use]
    pub fn level_cost(&self) -> f64 {
        self.base_gpu_per_frame * self.growth.powf(self.elapsed / self.level_duration)
    }
}

impl Default for Nenamark {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for Nenamark {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "Nenamark"
    }

    fn demand(&mut self, now: Seconds, dt: Seconds) -> Demand {
        if self.finished {
            return Demand::IDLE;
        }
        let (cpu, gpu) = self.pipeline.demand(now, dt);
        Demand {
            cpu_cycles: cpu,
            cpu_threads: 1.5,
            gpu_cycles: gpu,
            interaction: false,
        }
    }

    fn deliver(&mut self, cpu_cycles: f64, gpu_cycles: f64, now: Seconds, dt: Seconds) {
        if self.finished {
            return;
        }
        self.pipeline.deliver(cpu_cycles, gpu_cycles, now, dt);
        self.elapsed += dt.value();
        self.pipeline.set_costs(0.8e6, self.level_cost());
        if self.elapsed >= self.grace {
            if let Some(fps) = self.pipeline.rolling_fps(Seconds::new(1.0)) {
                if fps < self.desired_fps {
                    self.finished = true;
                    self.score = self.elapsed / self.level_duration;
                }
            }
        }
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn median_fps(&self) -> Option<f64> {
        self.pipeline.median_fps()
    }

    fn current_fps(&self) -> Option<f64> {
        self.pipeline.rolling_fps(Seconds::new(1.0))
    }
}

/// MiBench `basicmath_large` ("BML"): a continuously compute-bound,
/// single-threaded CPU task — the background application the paper runs
/// behind 3DMark to heat the big cluster. Each simulated iteration
/// corresponds to one pass of the real kernels in
/// [`mibench`] module.
///
/// # Examples
///
/// ```
/// use mpt_workloads::benchmarks::BasicMathLarge;
/// use mpt_workloads::Workload;
/// use mpt_units::Seconds;
///
/// let mut bml = BasicMathLarge::new();
/// let d = bml.demand(Seconds::ZERO, Seconds::from_millis(10.0));
/// assert_eq!(d.cpu_threads, 1.0);
/// assert_eq!(d.gpu_cycles, 0.0);
/// ```
#[derive(Debug)]
pub struct BasicMathLarge {
    delivered_cycles: f64,
    cycles_per_iteration: f64,
}

impl BasicMathLarge {
    /// Big-equivalent cycles per `basicmath` outer-loop iteration.
    pub const CYCLES_PER_ITERATION: f64 = 25.0e6;

    /// Creates the background task.
    #[must_use]
    pub fn new() -> Self {
        Self {
            delivered_cycles: 0.0,
            cycles_per_iteration: Self::CYCLES_PER_ITERATION,
        }
    }

    /// Iterations completed so far.
    #[must_use]
    pub fn iterations(&self) -> f64 {
        self.delivered_cycles / self.cycles_per_iteration
    }

    /// Executes one *real* basicmath iteration (the ported MiBench
    /// kernels), returning its checksum. Used by examples to demonstrate
    /// that the background load is genuine computation.
    #[must_use]
    pub fn run_real_iteration(&self, seed: u64) -> f64 {
        mibench::basicmath_iteration(seed)
    }
}

impl Default for BasicMathLarge {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for BasicMathLarge {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "basicmath_large"
    }

    fn demand(&mut self, _now: Seconds, dt: Seconds) -> Demand {
        // A compute-bound loop consumes whatever one core can deliver.
        Demand {
            cpu_cycles: 4.0e9 * dt.value(),
            cpu_threads: 1.0,
            gpu_cycles: 0.0,
            interaction: false,
        }
    }

    fn deliver(&mut self, cpu_cycles: f64, _gpu_cycles: f64, _now: Seconds, _dt: Seconds) {
        self.delivered_cycles += cpu_cycles.max(0.0);
    }
}

/// A steady, partially loaded CPU task: the platform's resident services
/// (Android's `system_server`, audio, sensors). The Odroid scenarios run
/// one on the little cluster, reproducing the small but nonzero little-
/// cluster slice of the paper's Figure 9 pies.
///
/// # Examples
///
/// ```
/// use mpt_workloads::benchmarks::SteadyCompute;
/// use mpt_workloads::Workload;
/// use mpt_units::Seconds;
///
/// let mut svc = SteadyCompute::new("system_server", 0.5e9, 1.0);
/// let d = svc.demand(Seconds::ZERO, Seconds::from_millis(10.0));
/// assert!((d.cpu_cycles - 5.0e6).abs() < 1.0);
/// ```
#[derive(Debug)]
pub struct SteadyCompute {
    name: String,
    rate: f64,
    threads: f64,
    delivered: f64,
}

impl SteadyCompute {
    /// Creates a steady task demanding `rate` big-equivalent cycles per
    /// second across `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `threads` is not positive.
    #[must_use]
    pub fn new(name: impl Into<String>, rate: f64, threads: f64) -> Self {
        assert!(
            rate > 0.0 && threads > 0.0,
            "rate and threads must be positive"
        );
        Self {
            name: name.into(),
            rate,
            threads,
            delivered: 0.0,
        }
    }

    /// Total cycles delivered so far.
    #[must_use]
    pub fn delivered_cycles(&self) -> f64 {
        self.delivered
    }
}

impl Workload for SteadyCompute {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn demand(&mut self, _now: Seconds, dt: Seconds) -> Demand {
        Demand {
            cpu_cycles: self.rate * dt.value(),
            cpu_threads: self.threads,
            gpu_cycles: 0.0,
            interaction: false,
        }
    }

    fn deliver(&mut self, cpu_cycles: f64, _gpu_cycles: f64, _now: Seconds, _dt: Seconds) {
        self.delivered += cpu_cycles.max(0.0);
    }

    fn next_phase_change(&self, _now: Seconds) -> Option<Seconds> {
        // Demand rate is constant forever: never a phase boundary.
        Some(Seconds::new(f64::INFINITY))
    }
}

/// A bursty CPU task: alternates short heavy bursts with idle gaps.
/// This is the adversarial pattern behind the paper's one-second
/// utilization window — ranking processes by *instantaneous* power would
/// repeatedly pick a bursty-but-light task over a steady heavy one.
///
/// # Examples
///
/// ```
/// use mpt_workloads::benchmarks::BurstyCompute;
/// use mpt_workloads::Workload;
/// use mpt_units::Seconds;
///
/// let mut spiky = BurstyCompute::new("notification-storm", Seconds::new(0.1), Seconds::new(0.9));
/// let in_burst = spiky.demand(Seconds::ZERO, Seconds::from_millis(10.0));
/// let idle = spiky.demand(Seconds::new(0.5), Seconds::from_millis(10.0));
/// assert!(in_burst.cpu_cycles > 0.0);
/// assert_eq!(idle.cpu_cycles, 0.0);
/// ```
#[derive(Debug)]
pub struct BurstyCompute {
    name: String,
    burst: f64,
    idle: f64,
    threads: f64,
    delivered: f64,
}

impl BurstyCompute {
    /// Creates a bursty task: fully busy for `burst`, idle for `idle`,
    /// repeating.
    ///
    /// # Panics
    ///
    /// Panics if either duration is not positive.
    #[must_use]
    pub fn new(name: impl Into<String>, burst: Seconds, idle: Seconds) -> Self {
        assert!(
            burst.value() > 0.0 && idle.value() > 0.0,
            "durations must be positive"
        );
        Self {
            name: name.into(),
            burst: burst.value(),
            idle: idle.value(),
            threads: 2.0,
            delivered: 0.0,
        }
    }

    /// The duty cycle (busy fraction).
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        self.burst / (self.burst + self.idle)
    }

    /// Total cycles delivered so far.
    #[must_use]
    pub fn delivered_cycles(&self) -> f64 {
        self.delivered
    }

    fn in_burst(&self, now: Seconds) -> bool {
        let period = self.burst + self.idle;
        now.value().rem_euclid(period) < self.burst
    }
}

impl Workload for BurstyCompute {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn demand(&mut self, now: Seconds, dt: Seconds) -> Demand {
        if self.in_burst(now) {
            Demand {
                cpu_cycles: 4.0e9 * dt.value(),
                cpu_threads: self.threads,
                gpu_cycles: 0.0,
                interaction: false,
            }
        } else {
            Demand::IDLE
        }
    }

    fn deliver(&mut self, cpu_cycles: f64, _gpu_cycles: f64, _now: Seconds, _dt: Seconds) {
        self.delivered += cpu_cycles.max(0.0);
    }

    fn next_phase_change(&self, now: Seconds) -> Option<Seconds> {
        // The demand rate flips at every burst/idle edge.
        let period = self.burst + self.idle;
        let pos = now.value().rem_euclid(period);
        let remaining = if pos < self.burst {
            self.burst - pos
        } else {
            period - pos
        };
        Some(Seconds::new(now.value() + remaining))
    }
}

/// One phase of a [`PhasedCompute`] schedule: a constant demand rate
/// that lasts until an absolute simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputePhase {
    /// Absolute end time of the phase (exclusive), seconds.
    pub until_s: f64,
    /// Big-equivalent cycles demanded per second during the phase
    /// (zero = idle phase).
    pub rate: f64,
    /// Parallelism during the phase.
    pub threads: f64,
}

/// A piecewise-constant CPU task: an explicit schedule of (rate,
/// threads) phases with absolute end times, finishing after the last
/// phase. The canonical event-mode workload — every phase boundary is a
/// declared wake, so the engine covers each phase in macro steps and
/// never has to poll for a rate change.
///
/// # Examples
///
/// ```
/// use mpt_workloads::benchmarks::{ComputePhase, PhasedCompute};
/// use mpt_workloads::Workload;
/// use mpt_units::Seconds;
///
/// let mut w = PhasedCompute::new("install-then-idle", vec![
///     ComputePhase { until_s: 5.0, rate: 2.0e9, threads: 2.0 },
///     ComputePhase { until_s: 20.0, rate: 0.1e9, threads: 1.0 },
/// ]).unwrap();
/// assert!(w.demand(Seconds::new(1.0), Seconds::from_millis(10.0)).cpu_cycles > 0.0);
/// assert_eq!(w.next_phase_change(Seconds::new(1.0)), Some(Seconds::new(5.0)));
/// ```
#[derive(Debug)]
pub struct PhasedCompute {
    name: String,
    phases: Vec<ComputePhase>,
    delivered: f64,
    finished: bool,
}

impl PhasedCompute {
    /// Creates a phased task from a schedule of phases with strictly
    /// increasing positive end times.
    ///
    /// # Errors
    ///
    /// A message naming the offending phase when the schedule is empty,
    /// an end time is not strictly after its predecessor (or not
    /// positive/finite), a rate is negative, or a busy phase has
    /// non-positive threads.
    pub fn new(name: impl Into<String>, phases: Vec<ComputePhase>) -> Result<Self, String> {
        if phases.is_empty() {
            return Err("phased workload needs at least one phase".into());
        }
        let mut prev = 0.0;
        for (i, p) in phases.iter().enumerate() {
            if !p.until_s.is_finite() || p.until_s <= prev {
                return Err(format!(
                    "phase {i}: until_s {} must be finite and strictly after {}",
                    p.until_s, prev
                ));
            }
            if !p.rate.is_finite() || p.rate < 0.0 {
                return Err(format!("phase {i}: rate {} must be non-negative", p.rate));
            }
            if p.rate > 0.0 && (!p.threads.is_finite() || p.threads <= 0.0) {
                return Err(format!(
                    "phase {i}: threads {} must be positive when the phase is busy",
                    p.threads
                ));
            }
            prev = p.until_s;
        }
        Ok(Self {
            name: name.into(),
            phases,
            delivered: 0.0,
            finished: false,
        })
    }

    /// Total cycles delivered so far.
    #[must_use]
    pub fn delivered_cycles(&self) -> f64 {
        self.delivered
    }

    fn phase_at(&self, now: Seconds) -> Option<&ComputePhase> {
        self.phases.iter().find(|p| now.value() < p.until_s)
    }
}

impl Workload for PhasedCompute {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn demand(&mut self, now: Seconds, dt: Seconds) -> Demand {
        match self.phase_at(now) {
            Some(p) => Demand {
                cpu_cycles: p.rate * dt.value(),
                cpu_threads: p.threads,
                gpu_cycles: 0.0,
                interaction: false,
            },
            None => {
                self.finished = true;
                Demand::IDLE
            }
        }
    }

    fn deliver(&mut self, cpu_cycles: f64, _gpu_cycles: f64, now: Seconds, dt: Seconds) {
        self.delivered += cpu_cycles.max(0.0);
        if (now + dt).value() >= self.phases.last().map_or(0.0, |p| p.until_s) {
            self.finished = true;
        }
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn next_phase_change(&self, now: Seconds) -> Option<Seconds> {
        match self.phase_at(now) {
            Some(p) => Some(Seconds::new(p.until_s)),
            // Past the schedule: idle forever.
            None => Some(Seconds::new(f64::INFINITY)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: Seconds = Seconds::new(0.01);

    fn drive<W: Workload>(w: &mut W, seconds: f64, cpu_rate: f64, gpu_rate: f64) {
        let ticks = (seconds / DT.value()) as usize;
        for i in 0..ticks {
            let now = Seconds::new(i as f64 * DT.value());
            if w.is_finished() {
                break;
            }
            let d = w.demand(now, DT);
            w.deliver(
                d.cpu_cycles
                    .min(cpu_rate * DT.value() * d.cpu_threads.max(1.0)),
                d.gpu_cycles.min(gpu_rate * DT.value()),
                now,
                DT,
            );
        }
    }

    #[test]
    fn threedmark_gt1_hits_97fps_at_full_mali_speed() {
        let mut b = ThreeDMark::with_durations(Seconds::new(30.0), Seconds::new(30.0));
        drive(&mut b, 60.0, 4e9, 600.0e6);
        let gt1 = b.gt1_fps().unwrap();
        let gt2 = b.gt2_fps().unwrap();
        assert!((gt1 - 97.0).abs() < 3.0, "GT1 = {gt1}");
        assert!((gt2 - 51.0).abs() < 2.0, "GT2 = {gt2}");
    }

    #[test]
    fn threedmark_fps_drops_when_gpu_is_capped() {
        let mut free = ThreeDMark::with_durations(Seconds::new(20.0), Seconds::new(20.0));
        let mut capped = ThreeDMark::with_durations(Seconds::new(20.0), Seconds::new(20.0));
        drive(&mut free, 40.0, 4e9, 600.0e6);
        drive(&mut capped, 40.0, 4e9, 530.0e6);
        assert!(capped.gt1_fps().unwrap() < free.gt1_fps().unwrap());
        assert!(capped.gt2_fps().unwrap() < free.gt2_fps().unwrap());
    }

    #[test]
    fn nenamark_unthrottled_score_matches_table2() {
        let mut n = Nenamark::new();
        drive(&mut n, 300.0, 4e9, 600.0e6);
        assert!(n.is_finished(), "nenamark must terminate");
        let score = n.score();
        assert!((3.2..3.8).contains(&score), "score = {score}");
    }

    #[test]
    fn nenamark_throttled_scores_lower() {
        let mut free = Nenamark::new();
        let mut slow = Nenamark::new();
        drive(&mut free, 300.0, 4e9, 600.0e6);
        drive(&mut slow, 300.0, 4e9, 520.0e6);
        assert!(
            slow.score() < free.score(),
            "{} !< {}",
            slow.score(),
            free.score()
        );
    }

    #[test]
    fn nenamark_levels_get_harder() {
        let n = Nenamark::new();
        let c0 = n.level_cost();
        let mut n2 = Nenamark::new();
        n2.elapsed = 120.0; // level 3 (40 s per level)
        assert!(n2.level_cost() > c0 * 1.7);
        assert_eq!(n2.current_level(), 3);
    }

    #[test]
    fn nenamark_idle_after_finish() {
        let mut n = Nenamark::new();
        drive(&mut n, 300.0, 4e9, 600.0e6);
        assert!(n.is_finished());
        let d = n.demand(Seconds::new(400.0), DT);
        assert_eq!(d, Demand::IDLE);
        let score = n.score();
        n.deliver(1e9, 1e9, Seconds::new(400.0), DT);
        assert_eq!(n.score(), score, "score frozen after termination");
    }

    #[test]
    fn bml_consumes_one_core_continuously() {
        let mut bml = BasicMathLarge::new();
        // One big core at 1.8 GHz for 10 s.
        drive(&mut bml, 10.0, 1.8e9, 0.0);
        let iters = bml.iterations();
        let expected = 1.8e9 * 10.0 / BasicMathLarge::CYCLES_PER_ITERATION;
        assert!((iters - expected).abs() / expected < 0.01, "iters {iters}");
    }

    #[test]
    fn bml_runs_slower_on_the_little_cluster() {
        let mut fast = BasicMathLarge::new();
        let mut slow = BasicMathLarge::new();
        drive(&mut fast, 10.0, 1.8e9, 0.0);
        // Little cluster: 1.4 GHz * 0.45 IPC = 630 M big-equivalent.
        drive(&mut slow, 10.0, 0.63e9, 0.0);
        assert!(slow.iterations() < fast.iterations() * 0.5);
    }

    #[test]
    fn bml_real_iteration_checksum_is_finite() {
        let bml = BasicMathLarge::new();
        assert!(bml.run_real_iteration(1).is_finite());
    }

    #[test]
    fn steady_compute_consumes_its_rate() {
        let mut svc = SteadyCompute::new("system_server", 0.5e9, 1.0);
        drive(&mut svc, 10.0, 2.0e9, 0.0);
        let got = svc.delivered_cycles();
        assert!((got - 5.0e9).abs() / 5.0e9 < 0.01, "delivered {got}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn steady_compute_rejects_zero_rate() {
        let _ = SteadyCompute::new("x", 0.0, 1.0);
    }

    #[test]
    fn bursty_compute_respects_duty_cycle() {
        let mut b = BurstyCompute::new("spiky", Seconds::new(0.2), Seconds::new(0.8));
        assert!((b.duty_cycle() - 0.2).abs() < 1e-12);
        drive(&mut b, 10.0, 1.0e9, 0.0);
        // 20% duty at 1 Gcycle/s (x2 threads in drive) for 10 s.
        let expected = 0.2 * 2.0e9 * 10.0;
        let got = b.delivered_cycles();
        assert!((got - expected).abs() / expected < 0.05, "delivered {got}");
    }

    #[test]
    fn bursty_idle_phase_demands_nothing() {
        let mut b = BurstyCompute::new("spiky", Seconds::new(0.1), Seconds::new(0.9));
        let d = b.demand(Seconds::new(0.55), Seconds::new(0.01));
        assert_eq!(d, Demand::IDLE);
    }
}
