//! A faithful Rust port of the MiBench `basicmath` kernels (Guthaus et
//! al., IISWC 2001) — the paper's background load on the Odroid-XU3 is
//! `basicmath large` ("BML").
//!
//! The original C program exercises three kernels in a loop:
//! cubic-equation solving (`SolveCubic` from snipmath), integer square
//! roots (`usqrt`) and degree↔radian conversion. These are implemented
//! for real here so the background workload is genuinely computable; the
//! demand model in [`benchmarks`](crate::benchmarks) uses a fixed
//! cycles-per-iteration cost for simulation.

/// Roots of a cubic equation, following snipmath's `SolveCubic`.
#[derive(Debug, Clone, PartialEq)]
pub enum CubicRoots {
    /// Three real roots (includes repeated roots).
    Three([f64; 3]),
    /// One real root (the other two are complex conjugates).
    One(f64),
}

impl CubicRoots {
    /// The real roots as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        match self {
            CubicRoots::Three(r) => r,
            CubicRoots::One(r) => std::slice::from_ref(r),
        }
    }
}

/// Solves `a·x³ + b·x² + c·x + d = 0` for its real roots, using the
/// trigonometric method of snipmath's `SolveCubic`.
///
/// # Panics
///
/// Panics if `a == 0` (not a cubic).
///
/// # Examples
///
/// ```
/// use mpt_workloads::mibench::{solve_cubic, CubicRoots};
///
/// // (x-1)(x-2)(x-3) = x³ - 6x² + 11x - 6
/// match solve_cubic(1.0, -6.0, 11.0, -6.0) {
///     CubicRoots::Three(mut roots) => {
///         roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
///         assert!((roots[0] - 1.0).abs() < 1e-9);
///         assert!((roots[2] - 3.0).abs() < 1e-9);
///     }
///     CubicRoots::One(_) => panic!("expected three real roots"),
/// }
/// ```
#[must_use]
pub fn solve_cubic(a: f64, b: f64, c: f64, d: f64) -> CubicRoots {
    assert!(a != 0.0, "leading coefficient must be nonzero");
    let a1 = b / a;
    let a2 = c / a;
    let a3 = d / a;
    let q = (a1 * a1 - 3.0 * a2) / 9.0;
    let r = (2.0 * a1 * a1 * a1 - 9.0 * a1 * a2 + 27.0 * a3) / 54.0;
    let q_cubed = q * q * q;
    let determinant = q_cubed - r * r;
    if determinant >= 0.0 {
        // Three real roots.
        let theta = (r / q_cubed.sqrt()).clamp(-1.0, 1.0).acos();
        let sqrt_q = q.sqrt();
        let x1 = -2.0 * sqrt_q * (theta / 3.0).cos() - a1 / 3.0;
        let x2 = -2.0 * sqrt_q * ((theta + 2.0 * std::f64::consts::PI) / 3.0).cos() - a1 / 3.0;
        let x3 = -2.0 * sqrt_q * ((theta + 4.0 * std::f64::consts::PI) / 3.0).cos() - a1 / 3.0;
        CubicRoots::Three([x1, x2, x3])
    } else {
        // One real root.
        let mut e = (r.abs() + (-determinant).sqrt()).cbrt();
        if r > 0.0 {
            e = -e;
        }
        CubicRoots::One(e + q / e - a1 / 3.0)
    }
}

/// Integer square root by successive approximation, as in MiBench's
/// `usqrt` (bitwise digit-by-digit method).
///
/// Returns `⌊√x⌋`.
///
/// # Examples
///
/// ```
/// use mpt_workloads::mibench::usqrt;
///
/// assert_eq!(usqrt(0), 0);
/// assert_eq!(usqrt(25), 5);
/// assert_eq!(usqrt(26), 5);
/// assert_eq!(usqrt(u32::MAX as u64), 65535);
/// ```
#[must_use]
pub fn usqrt(x: u64) -> u64 {
    let mut a: u64 = 0; // accumulator
    let mut r: u64 = 0; // remainder
    let mut e: u64 = 0; // trial bit
    let mut x = x;
    // 32 iterations for 64-bit input.
    for _ in 0..32 {
        r = (r << 2) + (x >> 62);
        x <<= 2;
        a <<= 1;
        e = (a << 1) + 1;
        if r >= e {
            r -= e;
            a += 1;
        }
    }
    let _ = e;
    a
}

/// Degrees to radians (MiBench `deg2rad`).
#[must_use]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * std::f64::consts::PI / 180.0
}

/// Radians to degrees (MiBench `rad2deg`).
#[must_use]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / std::f64::consts::PI
}

/// Runs one `basicmath_large`-style iteration: a sweep of cubic solves, a
/// block of integer square roots and an angle-conversion loop, mirroring
/// the structure of the MiBench `basicmath_large` main loop. Returns a
/// checksum so the optimizer cannot delete the work.
#[must_use]
pub fn basicmath_iteration(seed: u64) -> f64 {
    let mut acc = 0.0_f64;
    let base = (seed % 16) as f64;
    // Cubic sweep (a1 varies, as in the benchmark's outer loops).
    let mut a1 = 1.0 + base * 0.1;
    while a1 < 4.0 + base * 0.1 {
        for r in solve_cubic(a1, -10.5, 32.0, -30.0).as_slice() {
            acc += r;
        }
        a1 += 0.25;
    }
    // Integer square roots.
    for i in 0..1000_u64 {
        acc += usqrt(i * i + seed) as f64 * 1e-6;
    }
    // Angle conversions.
    let mut deg = 0.0;
    while deg < 360.0 {
        acc += rad_to_deg(deg_to_rad(deg)) * 1e-9;
        deg += 1.0;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cubic_with_known_roots() {
        // (x+4)(x-2)(x-7) = x³ -5x² -22x +56
        match solve_cubic(1.0, -5.0, -22.0, 56.0) {
            CubicRoots::Three(mut r) => {
                r.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert!((r[0] + 4.0).abs() < 1e-9);
                assert!((r[1] - 2.0).abs() < 1e-9);
                assert!((r[2] - 7.0).abs() < 1e-9);
            }
            CubicRoots::One(_) => panic!("expected three roots"),
        }
    }

    #[test]
    fn cubic_with_single_real_root() {
        // x³ + x + 1 has exactly one real root near -0.6823.
        match solve_cubic(1.0, 0.0, 1.0, 1.0) {
            CubicRoots::One(r) => assert!((r + 0.682_327_8).abs() < 1e-6),
            CubicRoots::Three(_) => panic!("expected one real root"),
        }
    }

    #[test]
    #[should_panic(expected = "leading coefficient")]
    fn cubic_requires_nonzero_leading_coefficient() {
        let _ = solve_cubic(0.0, 1.0, 1.0, 1.0);
    }

    #[test]
    fn usqrt_matches_float_sqrt_on_squares() {
        for v in [0u64, 1, 2, 3, 100, 65_535, 1 << 31] {
            assert_eq!(usqrt(v * v), v, "sqrt({})", v * v);
        }
    }

    #[test]
    fn angle_conversion_round_trip() {
        for deg in [0.0, 45.0, 90.0, 123.456, 359.0] {
            assert!((rad_to_deg(deg_to_rad(deg)) - deg).abs() < 1e-9);
        }
    }

    #[test]
    fn iteration_is_deterministic() {
        assert_eq!(basicmath_iteration(7), basicmath_iteration(7));
        // Different seeds do different work.
        assert_ne!(basicmath_iteration(1), basicmath_iteration(2));
    }

    proptest! {
        #[test]
        fn prop_usqrt_is_floor_sqrt(x in 0u64..(1 << 52)) {
            let s = usqrt(x);
            prop_assert!(s * s <= x);
            prop_assert!((s + 1) * (s + 1) > x);
        }

        #[test]
        fn prop_cubic_roots_satisfy_equation(
            b in -5.0_f64..5.0,
            c in -5.0_f64..5.0,
            d in -5.0_f64..5.0,
        ) {
            let roots = solve_cubic(1.0, b, c, d);
            for &x in roots.as_slice() {
                let y = x * x * x + b * x * x + c * x + d;
                // Scale tolerance with the magnitude of the terms.
                let scale = 1.0 + x.abs().powi(3) + b.abs() * x * x + c.abs() * x.abs() + d.abs();
                prop_assert!(y.abs() < 1e-7 * scale, "root {x} gives {y}");
            }
        }
    }
}
