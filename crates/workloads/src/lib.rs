#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Application and benchmark workload models.
//!
//! The paper evaluates on two kinds of workloads:
//!
//! - **Popular Android apps** on the Nexus 6P (Section III): Paper.io and
//!   Stickman Hook (games), Amazon (shopping), Google Hangouts (video
//!   conferencing) and Facebook (social) — modelled here as frame-based
//!   demand generators with app-specific CPU/GPU per-frame costs, phases
//!   and interaction patterns ([`apps`]).
//! - **Benchmarks** on the Odroid-XU3 (Section IV): a 3DMark-style
//!   two-part GPU benchmark (GT1/GT2), a Nenamark-style level benchmark
//!   that terminates when the frame rate drops below a threshold, and
//!   MiBench's `basicmath_large` as the power-hungry background task
//!   ([`benchmarks`]). The basicmath kernels themselves (cubic roots,
//!   integer square root, angle conversion) are ported for real in
//!   [`mibench`] — the background load is genuinely computable, not a
//!   placeholder.
//!
//! A [`Workload`] expresses per-tick *demand* (CPU cycles with a
//! parallelism bound, GPU cycles, interaction events); the simulator
//! allocates capacity and reports back what was *delivered*; the
//! [`FramePipeline`] turns delivered cycles into completed frames and
//! frame-rate statistics (median FPS — the paper's Tables I and II
//! metric).

pub mod apps;
pub mod benchmarks;
mod demand;
mod fleet;
pub mod mibench;
mod pipeline;
pub mod trace;

pub use demand::{Demand, Workload};
pub use fleet::{FleetInputs, PowerTrace};
pub use pipeline::FramePipeline;
