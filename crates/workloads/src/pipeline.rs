//! Frame pipeline: delivered cycles → completed frames → FPS statistics.

use mpt_units::Seconds;

/// A double-sided (CPU + GPU) frame pipeline with a vsync-style target
/// rate and time-varying per-frame costs.
///
/// Every frame costs `cpu_per_frame` big-equivalent CPU cycles and
/// `gpu_per_frame` GPU cycles (scaled by the current scene complexity —
/// see [`set_costs`](Self::set_costs)); a frame is complete when both
/// sides have finished it. The pipeline never runs more than one frame
/// ahead of the vsync schedule (`target_fps`), so a fast platform idles
/// between frames (low utilization → governors ramp down) while a
/// throttled platform falls behind (full utilization at a lower achieved
/// FPS) — exactly the mechanics behind the paper's Table I.
///
/// Progress is tracked in *frames*, not cycles, so cost changes apply to
/// future work only.
///
/// # Examples
///
/// ```
/// use mpt_workloads::FramePipeline;
/// use mpt_units::Seconds;
///
/// let mut p = FramePipeline::new(1.0e6, 10.0e6, 60.0);
/// // Deliver generous cycles for 2 simulated seconds at 10 ms ticks.
/// for i in 0..200 {
///     let now = Seconds::new(i as f64 * 0.01);
///     let (cpu, gpu) = p.demand(now, Seconds::new(0.01));
///     p.deliver(cpu, gpu, now, Seconds::new(0.01));
/// }
/// // Vsync-limited: ~60 FPS.
/// let fps = p.median_fps().unwrap();
/// assert!((fps - 60.0).abs() < 2.0, "fps = {fps}");
/// ```
#[derive(Debug, Clone)]
pub struct FramePipeline {
    cpu_per_frame: f64,
    gpu_per_frame: f64,
    target_fps: f64,
    /// Frames of CPU-side work finished.
    cpu_progress: f64,
    /// Frames of GPU-side work finished.
    gpu_progress: f64,
    completed: f64,
    /// (time, total completed frames) samples.
    history: Vec<(f64, f64)>,
}

impl FramePipeline {
    /// Creates a pipeline.
    ///
    /// # Panics
    ///
    /// Panics if any per-frame cost is negative, both are zero, or
    /// `target_fps` is not positive.
    #[must_use]
    pub fn new(cpu_per_frame: f64, gpu_per_frame: f64, target_fps: f64) -> Self {
        assert!(
            cpu_per_frame >= 0.0 && gpu_per_frame >= 0.0,
            "frame costs must be >= 0"
        );
        assert!(
            cpu_per_frame + gpu_per_frame > 0.0,
            "a frame must cost something"
        );
        assert!(target_fps > 0.0, "target fps must be positive");
        Self {
            cpu_per_frame,
            gpu_per_frame,
            target_fps,
            cpu_progress: 0.0,
            gpu_progress: 0.0,
            completed: 0.0,
            history: Vec::new(),
        }
    }

    /// The vsync target rate.
    #[must_use]
    pub fn target_fps(&self) -> f64 {
        self.target_fps
    }

    /// The current `(cpu, gpu)` per-frame costs.
    #[must_use]
    pub fn costs(&self) -> (f64, f64) {
        (self.cpu_per_frame, self.gpu_per_frame)
    }

    /// Changes the per-frame costs for *future* work (scene complexity
    /// changes; benchmark level advances).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`new`](Self::new).
    pub fn set_costs(&mut self, cpu_per_frame: f64, gpu_per_frame: f64) {
        assert!(
            cpu_per_frame >= 0.0 && gpu_per_frame >= 0.0,
            "frame costs must be >= 0"
        );
        assert!(
            cpu_per_frame + gpu_per_frame > 0.0,
            "a frame must cost something"
        );
        self.cpu_per_frame = cpu_per_frame;
        self.gpu_per_frame = gpu_per_frame;
    }

    /// Scales both per-frame costs by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scale_costs(&mut self, factor: f64) {
        assert!(factor > 0.0, "cost factor must be positive");
        self.cpu_per_frame *= factor;
        self.gpu_per_frame *= factor;
    }

    /// How many frames one side of the pipeline may run ahead of the
    /// other (double-buffering: the CPU prepares at most two frames the
    /// GPU has not rendered yet, and vice versa).
    const PIPELINE_DEPTH: f64 = 2.0;

    fn frames_allowed(&self, now: Seconds, dt: Seconds) -> f64 {
        (now.value() + dt.value()) * self.target_fps + 1.0
    }

    fn cpu_limit(&self, allowed: f64) -> f64 {
        if self.gpu_per_frame > 0.0 {
            allowed.min(self.gpu_progress + Self::PIPELINE_DEPTH)
        } else {
            allowed
        }
    }

    fn gpu_limit(&self, allowed: f64) -> f64 {
        if self.cpu_per_frame > 0.0 {
            allowed.min(self.cpu_progress + Self::PIPELINE_DEPTH)
        } else {
            allowed
        }
    }

    /// The `(cpu, gpu)` cycles wanted for the tick at `now`, respecting
    /// the vsync lookahead and the pipeline depth (neither side works
    /// more than a couple of frames ahead of the other).
    #[must_use]
    pub fn demand(&self, now: Seconds, dt: Seconds) -> (f64, f64) {
        let allowed = self.frames_allowed(now, dt);
        let cpu = ((self.cpu_limit(allowed) - self.cpu_progress) * self.cpu_per_frame).max(0.0);
        let gpu = ((self.gpu_limit(allowed) - self.gpu_progress) * self.gpu_per_frame).max(0.0);
        (cpu, gpu)
    }

    /// Records delivered cycles and advances frame completion.
    pub fn deliver(&mut self, cpu: f64, gpu: f64, now: Seconds, dt: Seconds) {
        let allowed = self.frames_allowed(now, dt);
        if self.cpu_per_frame > 0.0 {
            self.cpu_progress = (self.cpu_progress + cpu.max(0.0) / self.cpu_per_frame)
                .min(self.cpu_limit(allowed));
        } else {
            self.cpu_progress = allowed;
        }
        if self.gpu_per_frame > 0.0 {
            self.gpu_progress = (self.gpu_progress + gpu.max(0.0) / self.gpu_per_frame)
                .min(self.gpu_limit(allowed));
        } else {
            self.gpu_progress = allowed;
        }
        self.completed = self.cpu_progress.min(self.gpu_progress).max(self.completed);
        self.history
            .push((now.value() + dt.value(), self.completed));
    }

    /// Total frames completed so far.
    #[must_use]
    pub fn frames_completed(&self) -> f64 {
        self.completed
    }

    /// Frames completed per second over the trailing `window`.
    ///
    /// Returns `None` until at least `window` of history exists.
    #[must_use]
    pub fn rolling_fps(&self, window: Seconds) -> Option<f64> {
        let (t_end, f_end) = *self.history.last()?;
        let t_start = t_end - window.value();
        if self.history.first()?.0 > t_start {
            return None;
        }
        // Find the completed count at t_start (last sample <= t_start).
        let idx = self.history.partition_point(|&(t, _)| t <= t_start);
        let f_start = self.history[idx.saturating_sub(1)].1;
        Some((f_end - f_start) / window.value())
    }

    /// Per-second frame counts (the samples behind the median).
    #[must_use]
    pub fn fps_buckets(&self) -> Vec<f64> {
        let Some(&(t_end, _)) = self.history.last() else {
            return Vec::new();
        };
        let whole_seconds = t_end.floor() as usize;
        let mut buckets = Vec::with_capacity(whole_seconds);
        let mut prev_frames = 0.0;
        let mut idx = 0;
        for sec in 1..=whole_seconds {
            let boundary = sec as f64;
            while idx < self.history.len() && self.history[idx].0 <= boundary {
                idx += 1;
            }
            let frames_at = if idx == 0 {
                0.0
            } else {
                self.history[idx - 1].1
            };
            buckets.push(frames_at - prev_frames);
            prev_frames = frames_at;
        }
        buckets
    }

    /// The fraction of whole seconds whose frame count fell below
    /// `threshold` — a jank metric in the spirit of the QoS works the
    /// paper cites (QScale, MAESTRO). Returns `None` with less than one
    /// full second of history.
    #[must_use]
    pub fn jank_ratio(&self, threshold: f64) -> Option<f64> {
        let buckets = self.fps_buckets();
        if buckets.is_empty() {
            return None;
        }
        let janky = buckets.iter().filter(|&&f| f < threshold).count();
        Some(janky as f64 / buckets.len() as f64)
    }

    /// The median of the per-second frame counts — the paper's reported
    /// metric. Returns `None` with less than one full second of history.
    #[must_use]
    pub fn median_fps(&self) -> Option<f64> {
        let buckets = self.fps_buckets();
        if buckets.is_empty() {
            return None;
        }
        let mut sorted = buckets;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        Some(if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const DT: Seconds = Seconds::new(0.01);

    /// Drives the pipeline with a capacity limit per tick on each side.
    fn run(p: &mut FramePipeline, seconds: f64, cpu_rate: f64, gpu_rate: f64) {
        let ticks = (seconds / DT.value()) as usize;
        for i in 0..ticks {
            let now = Seconds::new(i as f64 * DT.value());
            let (cw, gw) = p.demand(now, DT);
            p.deliver(
                cw.min(cpu_rate * DT.value()),
                gw.min(gpu_rate * DT.value()),
                now,
                DT,
            );
        }
    }

    #[test]
    fn gpu_bound_fps_matches_rate_over_cost() {
        // GPU can deliver 350 Mcycles/s, frames cost 10 M: 35 FPS.
        let mut p = FramePipeline::new(0.5e6, 10.0e6, 60.0);
        run(&mut p, 20.0, 1e9, 350.0e6);
        let fps = p.median_fps().unwrap();
        assert!((fps - 35.0).abs() < 1.5, "fps = {fps}");
    }

    #[test]
    fn vsync_caps_fast_platforms() {
        let mut p = FramePipeline::new(0.5e6, 2.0e6, 60.0);
        run(&mut p, 10.0, 1e9, 1e9);
        let fps = p.median_fps().unwrap();
        assert!(fps <= 61.0, "fps = {fps} exceeds vsync");
        assert!(fps >= 58.0);
    }

    #[test]
    fn cpu_bound_when_cpu_is_the_bottleneck() {
        // CPU side can do 70 Mcycles/s, frames cost 2 M CPU: 35 FPS even
        // though the GPU is idle-fast.
        let mut p = FramePipeline::new(2.0e6, 1.0e6, 60.0);
        run(&mut p, 20.0, 70.0e6, 1e9);
        let fps = p.median_fps().unwrap();
        assert!((fps - 35.0).abs() < 1.5, "fps = {fps}");
    }

    #[test]
    fn demand_stays_bounded_by_lookahead() {
        let p = FramePipeline::new(1.0e6, 10.0e6, 60.0);
        let (cpu, gpu) = p.demand(Seconds::ZERO, DT);
        // At t=0 the pipeline may want at most ~1.6 frames of work.
        assert!(cpu <= 1.0e6 * 1.7);
        assert!(gpu <= 10.0e6 * 1.7);
    }

    #[test]
    fn starved_pipeline_completes_nothing() {
        let mut p = FramePipeline::new(1.0e6, 10.0e6, 60.0);
        run(&mut p, 5.0, 0.0, 0.0);
        assert_eq!(p.frames_completed(), 0.0);
        assert_eq!(p.median_fps(), Some(0.0));
    }

    #[test]
    fn rolling_fps_reflects_recent_rate() {
        let mut p = FramePipeline::new(0.1e6, 10.0e6, 120.0);
        // Fast for 5 s then starved for 5 s.
        run(&mut p, 5.0, 1e9, 1e9);
        let fast = p.rolling_fps(Seconds::new(2.0)).unwrap();
        for i in 500..1000 {
            let now = Seconds::new(i as f64 * DT.value());
            p.deliver(0.0, 0.0, now, DT);
        }
        let slow = p.rolling_fps(Seconds::new(2.0)).unwrap();
        assert!(fast > 80.0, "fast = {fast}");
        assert!(slow < 5.0, "slow = {slow}");
    }

    #[test]
    fn rolling_fps_needs_enough_history() {
        let mut p = FramePipeline::new(1.0e6, 1.0e6, 60.0);
        run(&mut p, 0.5, 1e9, 1e9);
        assert!(p.rolling_fps(Seconds::new(2.0)).is_none());
    }

    #[test]
    fn heavier_costs_reduce_fps() {
        let mut a = FramePipeline::new(0.5e6, 10.0e6, 60.0);
        let mut b = FramePipeline::new(0.5e6, 10.0e6, 60.0);
        b.scale_costs(2.0);
        run(&mut a, 10.0, 1e9, 300.0e6);
        run(&mut b, 10.0, 1e9, 300.0e6);
        assert!(b.median_fps().unwrap() < a.median_fps().unwrap());
    }

    #[test]
    fn cost_change_applies_to_future_frames_only() {
        let mut p = FramePipeline::new(1.0e6, 10.0e6, 240.0);
        run(&mut p, 5.0, 1e9, 300.0e6); // ~30 fps
        let before = p.frames_completed();
        p.set_costs(1.0e6, 20.0e6); // frames get twice as heavy
        run(&mut p, 5.0, 1e9, 300.0e6);
        let after = p.frames_completed() - before;
        // Second half should complete roughly half the frames of the first.
        assert!(after < before * 0.65, "before {before}, after {after}");
        // Progress was not retroactively lost.
        assert!(p.frames_completed() >= before);
    }

    #[test]
    #[should_panic(expected = "must cost something")]
    fn zero_cost_frame_is_a_bug() {
        let _ = FramePipeline::new(0.0, 0.0, 60.0);
    }

    #[test]
    fn cpu_only_pipeline_works() {
        let mut p = FramePipeline::new(2.0e6, 0.0, 60.0);
        run(&mut p, 10.0, 70.0e6, 0.0);
        let fps = p.median_fps().unwrap();
        assert!((fps - 35.0).abs() < 1.5, "fps = {fps}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_fps_monotone_in_gpu_rate(r1 in 50.0_f64..500.0, r2 in 50.0_f64..500.0) {
            let mut a = FramePipeline::new(0.1e6, 10.0e6, 120.0);
            let mut b = FramePipeline::new(0.1e6, 10.0e6, 120.0);
            run(&mut a, 10.0, 1e9, r1 * 1e6);
            run(&mut b, 10.0, 1e9, r2 * 1e6);
            if r1 < r2 {
                prop_assert!(a.median_fps().unwrap() <= b.median_fps().unwrap() + 1.0);
            }
        }

        #[test]
        fn prop_completed_frames_never_decrease(rates in proptest::collection::vec(0.0_f64..500.0, 1..20)) {
            let mut p = FramePipeline::new(0.5e6, 5.0e6, 60.0);
            let mut prev = 0.0;
            for (i, r) in rates.iter().enumerate() {
                let now = Seconds::new(i as f64 * 0.01);
                let (cw, gw) = p.demand(now, DT);
                p.deliver(cw.min(r * 1e6 * 0.01), gw.min(r * 1e6 * 0.01), now, DT);
                prop_assert!(p.frames_completed() >= prev);
                prev = p.frames_completed();
            }
        }

        #[test]
        fn prop_fps_never_exceeds_vsync(rate in 0.0_f64..2000.0) {
            let mut p = FramePipeline::new(0.1e6, 1.0e6, 60.0);
            run(&mut p, 10.0, 1e9, rate * 1e6);
            if let Some(fps) = p.median_fps() {
                prop_assert!(fps <= 61.0);
            }
        }
    }

    #[test]
    fn jank_ratio_counts_slow_seconds() {
        let mut p = FramePipeline::new(0.5e6, 10.0e6, 60.0);
        // 5 s fast (~35 fps), 5 s starved (0 fps).
        run(&mut p, 5.0, 1e9, 350.0e6);
        for i in 500..1000 {
            let now = Seconds::new(i as f64 * DT.value());
            p.deliver(0.0, 0.0, now, DT);
        }
        let jank = p.jank_ratio(30.0).unwrap();
        assert!((0.4..0.7).contains(&jank), "jank = {jank}");
        // Everything clears a 1 FPS bar except the starved half.
        assert_eq!(p.jank_ratio(0.0), Some(0.0));
    }

    #[test]
    fn jank_ratio_none_without_history() {
        let p = FramePipeline::new(1.0e6, 1.0e6, 60.0);
        assert_eq!(p.jank_ratio(30.0), None);
    }
}
