//! Lowering a fleet spec to per-device B-side inputs.
//!
//! A fleet shares one platform model and one canonical workload run; the
//! devices differ only in what they *inject* into the shared dynamics.
//! [`PowerTrace`] captures the canonical run's per-node injected power
//! on a uniform tick grid, and [`FleetInputs`] replays it across N
//! devices with each device's resolved [`DeviceParams`]:
//!
//! - `leakage_scale · workload_mix` multiplies the device's power
//!   (process corner × usage intensity — both strictly input-side),
//! - `phase_offset_s` shifts the device's read position in the trace
//!   circularly (a steady population caught at random phases of the
//!   viral launch), rounded to the tick grid.
//!
//! Nothing here touches temperatures or the platform model: the output
//! is exactly the node-major power plane a
//! `FleetState` feeds to the batched solver. Exact zeros in the trace
//! stay exact zeros after scaling, preserving the `Bd` scatter's
//! skip-unpowered-nodes fast path bit-for-bit.

use mpt_soc::DeviceParams;
use mpt_units::Watts;

/// Per-node injected power of one canonical run, on a uniform tick grid.
///
/// Tick-major layout: `samples[tick * nodes + node]` in watts.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    dt_s: f64,
    nodes: usize,
    samples: Vec<f64>,
}

impl PowerTrace {
    /// An empty trace over `nodes` thermal nodes sampled every `dt_s`
    /// seconds.
    #[must_use]
    pub fn new(dt_s: f64, nodes: usize) -> Self {
        Self {
            dt_s,
            nodes,
            samples: Vec::new(),
        }
    }

    /// Appends one tick of per-node powers (length must equal the node
    /// count).
    pub fn push_tick(&mut self, node_powers: &[Watts]) {
        debug_assert_eq!(node_powers.len(), self.nodes);
        self.samples.extend(node_powers.iter().map(|p| p.value()));
    }

    /// Number of recorded ticks.
    #[must_use]
    pub fn ticks(&self) -> usize {
        self.samples.len().checked_div(self.nodes).unwrap_or(0)
    }

    /// Number of thermal nodes per tick.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The tick period in seconds.
    #[must_use]
    pub fn dt_s(&self) -> f64 {
        self.dt_s
    }

    /// Power at `(tick, node)` in watts.
    #[must_use]
    pub fn sample(&self, tick: usize, node: usize) -> f64 {
        self.samples[tick * self.nodes + node]
    }
}

/// A fleet's assembled input model: the canonical trace plus each
/// device's resolved multiplier and phase shift.
#[derive(Debug, Clone)]
pub struct FleetInputs {
    trace: PowerTrace,
    /// Per-device power multiplier (`leakage_scale · workload_mix`).
    scale: Vec<f64>,
    /// Per-device circular read offset in ticks.
    offset_ticks: Vec<usize>,
}

impl FleetInputs {
    /// Lowers resolved device parameters against a canonical trace.
    ///
    /// Phase offsets are rounded to the trace's tick grid (the same
    /// quantization the event engine applies to wake times).
    #[must_use]
    pub fn new(trace: PowerTrace, params: &[DeviceParams]) -> Self {
        let ticks = trace.ticks().max(1);
        let scale = params
            .iter()
            .map(|p| p.leakage_scale * p.workload_mix)
            .collect();
        let offset_ticks = params
            .iter()
            .map(|p| ((p.phase_offset_s / trace.dt_s).round().max(0.0) as usize) % ticks)
            .collect();
        Self {
            trace,
            scale,
            offset_ticks,
        }
    }

    /// Number of devices the inputs were lowered for.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.scale.len()
    }

    /// The canonical trace.
    #[must_use]
    pub fn trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// Fills one tick of the node-major power plane
    /// (`plane[node * devices + device]`, length `nodes · devices`) with
    /// every device's scaled, phase-shifted read of the trace.
    pub fn fill_tick(&self, tick: usize, plane: &mut [f64]) {
        let nodes = self.trace.nodes();
        let devices = self.scale.len();
        let ticks = self.trace.ticks();
        debug_assert_eq!(plane.len(), nodes * devices);
        if ticks == 0 {
            plane.fill(0.0);
            return;
        }
        for node in 0..nodes {
            let row = &mut plane[node * devices..(node + 1) * devices];
            for (d, out) in row.iter_mut().enumerate() {
                let src = (tick + self.offset_ticks[d]) % ticks;
                *out = self.trace.sample(src, node) * self.scale[d];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(leak: f64, mix: f64, phase: f64) -> DeviceParams {
        DeviceParams {
            leakage_scale: leak,
            ambient_offset_c: 0.0,
            phase_offset_s: phase,
            workload_mix: mix,
        }
    }

    fn two_tick_trace() -> PowerTrace {
        let mut t = PowerTrace::new(1.0, 2);
        t.push_tick(&[Watts::new(1.0), Watts::new(0.0)]);
        t.push_tick(&[Watts::new(3.0), Watts::new(4.0)]);
        t
    }

    #[test]
    fn scales_multiply_and_zeros_stay_exact() {
        let inputs = FleetInputs::new(two_tick_trace(), &[params(2.0, 0.5, 0.0)]);
        let mut plane = vec![f64::NAN; 2];
        inputs.fill_tick(0, &mut plane);
        assert_eq!(plane, vec![1.0, 0.0]);
        inputs.fill_tick(1, &mut plane);
        assert_eq!(plane, vec![3.0, 4.0]);
    }

    #[test]
    fn phase_offset_shifts_circularly() {
        let inputs = FleetInputs::new(
            two_tick_trace(),
            &[params(1.0, 1.0, 0.0), params(1.0, 1.0, 1.0)],
        );
        let mut plane = vec![0.0; 4];
        inputs.fill_tick(0, &mut plane);
        // Device 0 reads tick 0, device 1 reads tick 1 (node-major).
        assert_eq!(plane, vec![1.0, 3.0, 0.0, 4.0]);
        inputs.fill_tick(1, &mut plane);
        assert_eq!(plane, vec![3.0, 1.0, 4.0, 0.0]);
    }

    #[test]
    fn phase_offsets_round_to_tick_grid_and_wrap() {
        let inputs = FleetInputs::new(
            two_tick_trace(),
            // 0.4 s rounds down to 0 ticks; 2.6 s rounds to 3, wraps to 1.
            &[params(1.0, 1.0, 0.4), params(1.0, 1.0, 2.6)],
        );
        let mut plane = vec![0.0; 4];
        inputs.fill_tick(0, &mut plane);
        assert_eq!(plane, vec![1.0, 3.0, 0.0, 4.0]);
    }

    #[test]
    fn empty_trace_fills_zero() {
        let inputs = FleetInputs::new(PowerTrace::new(1.0, 2), &[params(1.0, 1.0, 0.0)]);
        let mut plane = vec![f64::NAN; 2];
        inputs.fill_tick(5, &mut plane);
        assert_eq!(plane, vec![0.0, 0.0]);
    }
}
