//! The workload abstraction: demand in, delivered cycles out.

use std::fmt;

use mpt_units::Seconds;

/// A workload's resource request for one simulation tick.
///
/// CPU work is expressed in *big-cluster-equivalent cycles* (one cycle of
/// a big core at IPC 1); when a process runs on the little cluster the
/// simulator converts through the cluster's `perf_per_clock`, so migrating
/// a task to the little cluster both slows it down and cuts its power —
/// the mechanism the paper's governor exploits.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Demand {
    /// CPU cycles wanted this tick (big-equivalent).
    pub cpu_cycles: f64,
    /// Maximum CPU parallelism (threads that can run simultaneously).
    pub cpu_threads: f64,
    /// GPU cycles wanted this tick.
    pub gpu_cycles: f64,
    /// Whether a user interaction (touch) happened this tick — the
    /// trigger Android's `interactive` governor boosts on.
    pub interaction: bool,
}

impl Demand {
    /// A completely idle tick.
    pub const IDLE: Demand = Demand {
        cpu_cycles: 0.0,
        cpu_threads: 0.0,
        gpu_cycles: 0.0,
        interaction: false,
    };
}

/// A demand generator driven by the simulation loop.
///
/// Call order per tick: [`demand`](Workload::demand) first, then (after
/// the simulator allocates capacity) [`deliver`](Workload::deliver) with
/// the cycles actually granted.
pub trait Workload: fmt::Debug + Send + std::any::Any {
    /// The workload's display name.
    fn name(&self) -> &str;

    /// Upcast for downcasting concrete workload types (benchmark scores
    /// and app pipelines are read back through this after a run).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// The resource request for the tick beginning at `now`.
    fn demand(&mut self, now: Seconds, dt: Seconds) -> Demand;

    /// Reports the cycles actually delivered for the tick at `now`.
    fn deliver(&mut self, cpu_cycles: f64, gpu_cycles: f64, now: Seconds, dt: Seconds);

    /// Whether the workload has run to completion (benchmarks terminate;
    /// apps run forever).
    fn is_finished(&self) -> bool {
        false
    }

    /// The median frame rate achieved so far, if this workload renders
    /// frames.
    fn median_fps(&self) -> Option<f64> {
        None
    }

    /// The *instantaneous* frame rate (a short trailing window), if this
    /// workload renders frames — the signal the per-tick observability
    /// stream and `fps_below` alert rules watch. `None` until enough
    /// frame history exists, and always `None` for compute workloads.
    fn current_fps(&self) -> Option<f64> {
        None
    }

    /// The next simulated time at which this workload's demand *rate*
    /// changes, as seen from `now` — the phase boundary the event-driven
    /// engine schedules a wake for.
    ///
    /// The contract: `Some(t)` promises the demand per unit time is
    /// constant on `[now, t)`, so the engine may cover that span in one
    /// macro pass; `Some(Seconds::new(f64::INFINITY))` promises it never
    /// changes again. `None` (the default) makes no promise at all —
    /// frame-based apps and benchmarks whose demand varies tick to tick
    /// return it, and the engine falls back to base-tick stepping.
    fn next_phase_change(&self, now: Seconds) -> Option<Seconds> {
        let _ = now;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_demand_is_zero() {
        let idle = Demand::IDLE;
        assert_eq!(idle.cpu_cycles, 0.0);
        assert_eq!(idle.gpu_cycles, 0.0);
        assert!(!idle.interaction);
    }

    #[test]
    fn workload_trait_is_object_safe() {
        fn assert_object(_: &dyn Workload) {}
        #[derive(Debug)]
        struct Nop;
        impl Workload for Nop {
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }

            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }

            fn name(&self) -> &str {
                "nop"
            }
            fn demand(&mut self, _: Seconds, _: Seconds) -> Demand {
                Demand::IDLE
            }
            fn deliver(&mut self, _: f64, _: f64, _: Seconds, _: Seconds) {}
        }
        assert_object(&Nop);
        let nop: &dyn Workload = &Nop;
        assert!(nop.median_fps().is_none());
        assert!(!nop.is_finished());
    }
}
