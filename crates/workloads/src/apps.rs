//! Models of the popular Android apps from the paper's Nexus 6P study.
//!
//! The paper evaluates "five representative apps from the top 30 apps on
//! the Google play store … two games, one shopping app, one video
//! conferencing app and one social media app". Each preset is an
//! [`AppModel`]: a frame pipeline with app-specific CPU/GPU costs, a
//! scene-complexity oscillation (which is what spreads the GPU frequency
//! residency across OPPs, as in Figures 2/4/6), per-tick cost jitter, and
//! a touch-interaction cadence that triggers the `interactive` governor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mpt_units::Seconds;

use crate::{Demand, FramePipeline, Workload};

/// A frame-rendering application model.
///
/// # Examples
///
/// ```
/// use mpt_workloads::apps;
/// use mpt_workloads::Workload;
/// use mpt_units::Seconds;
///
/// let mut game = apps::paper_io(42);
/// let d = game.demand(Seconds::ZERO, Seconds::from_millis(10.0));
/// assert!(d.gpu_cycles > 0.0, "games are GPU-heavy");
/// ```
#[derive(Debug)]
pub struct AppModel {
    name: String,
    pipeline: FramePipeline,
    base_cpu_per_frame: f64,
    base_gpu_per_frame: f64,
    cpu_threads: f64,
    /// Scene-complexity oscillation amplitude (fraction of base cost).
    phase_amplitude: f64,
    /// Scene-complexity period in seconds.
    phase_period: f64,
    /// Per-tick multiplicative cost jitter (fraction).
    jitter: f64,
    /// Seconds between touch interactions (0 = none).
    interaction_period: f64,
    next_interaction: f64,
    rng: StdRng,
}

/// Builder-style configuration for [`AppModel`].
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Display name.
    pub name: &'static str,
    /// CPU cycles per frame (big-equivalent).
    pub cpu_per_frame: f64,
    /// GPU cycles per frame.
    pub gpu_per_frame: f64,
    /// Vsync target.
    pub target_fps: f64,
    /// Render/worker thread parallelism.
    pub cpu_threads: f64,
    /// Scene complexity oscillation (fraction of base).
    pub phase_amplitude: f64,
    /// Oscillation period in seconds.
    pub phase_period: f64,
    /// Per-tick cost jitter fraction.
    pub jitter: f64,
    /// Seconds between interactions (0 disables).
    pub interaction_period: f64,
}

impl AppModel {
    /// Creates a model from a spec with a deterministic RNG seed.
    #[must_use]
    pub fn new(spec: &AppSpec, seed: u64) -> Self {
        Self {
            name: spec.name.to_owned(),
            pipeline: FramePipeline::new(spec.cpu_per_frame, spec.gpu_per_frame, spec.target_fps),
            base_cpu_per_frame: spec.cpu_per_frame,
            base_gpu_per_frame: spec.gpu_per_frame,
            cpu_threads: spec.cpu_threads,
            phase_amplitude: spec.phase_amplitude,
            phase_period: spec.phase_period.max(1e-3),
            jitter: spec.jitter,
            interaction_period: spec.interaction_period,
            next_interaction: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The frame pipeline (FPS statistics).
    #[must_use]
    pub fn pipeline(&self) -> &FramePipeline {
        &self.pipeline
    }

    fn complexity(&mut self, now: Seconds) -> f64 {
        let phase = 1.0
            + self.phase_amplitude
                * (std::f64::consts::TAU * now.value() / self.phase_period).sin();
        let noise = if self.jitter > 0.0 {
            1.0 + self.rng.gen_range(-self.jitter..self.jitter)
        } else {
            1.0
        };
        (phase * noise).max(0.05)
    }
}

impl Workload for AppModel {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn demand(&mut self, now: Seconds, dt: Seconds) -> Demand {
        let factor = self.complexity(now);
        self.pipeline.set_costs(
            self.base_cpu_per_frame * factor,
            self.base_gpu_per_frame * factor,
        );
        let (cpu, gpu) = self.pipeline.demand(now, dt);
        let interaction = if self.interaction_period > 0.0 && now.value() >= self.next_interaction {
            self.next_interaction = now.value() + self.interaction_period;
            true
        } else {
            false
        };
        Demand {
            cpu_cycles: cpu,
            cpu_threads: self.cpu_threads,
            gpu_cycles: gpu,
            interaction,
        }
    }

    fn deliver(&mut self, cpu_cycles: f64, gpu_cycles: f64, now: Seconds, dt: Seconds) {
        self.pipeline.deliver(cpu_cycles, gpu_cycles, now, dt);
    }

    fn median_fps(&self) -> Option<f64> {
        self.pipeline.median_fps()
    }

    fn current_fps(&self) -> Option<f64> {
        self.pipeline.rolling_fps(Seconds::new(1.0))
    }
}

/// Paper.io — "one of the top five games": GPU-heavy arena rendering.
///
/// Calibrated so the unthrottled Nexus 6P achieves ~35 FPS (Adreno 430
/// mostly at 510/600 MHz) and throttling to ~390 MHz drops it to ~23 FPS
/// (Table I row 1).
#[must_use]
pub fn paper_io(seed: u64) -> AppModel {
    AppModel::new(
        &AppSpec {
            name: "Paper.io",
            cpu_per_frame: 25.0e6,
            gpu_per_frame: 15.5e6,
            target_fps: 60.0,
            cpu_threads: 2.0,
            phase_amplitude: 0.18,
            phase_period: 9.0,
            jitter: 0.10,
            interaction_period: 1.0,
        },
        seed,
    )
}

/// Stickman Hook — a lighter physics game: near-vsync when unthrottled
/// (59 FPS), ~40 FPS under throttling (Table I row 2).
#[must_use]
pub fn stickman_hook(seed: u64) -> AppModel {
    AppModel::new(
        &AppSpec {
            name: "Stickman Hook",
            cpu_per_frame: 20.0e6,
            gpu_per_frame: 9.3e6,
            target_fps: 60.0,
            cpu_threads: 1.0,
            phase_amplitude: 0.25,
            phase_period: 6.0,
            jitter: 0.12,
            interaction_period: 0.8,
        },
        seed,
    )
}

/// Amazon shopping — "in contrast to the gaming apps, it primarily uses
/// the CPU when it is active": scroll-driven UI work on the big cluster,
/// 35 → 28 FPS under throttling (Table I row 3).
#[must_use]
pub fn amazon(seed: u64) -> AppModel {
    AppModel::new(
        &AppSpec {
            name: "Amazon",
            cpu_per_frame: 60.0e6,
            gpu_per_frame: 3.0e6,
            target_fps: 60.0,
            cpu_threads: 1.15,
            phase_amplitude: 0.25,
            phase_period: 7.0,
            jitter: 0.10,
            interaction_period: 1.5,
        },
        seed,
    )
}

/// Google Hangouts — steady video-conference decode/encode: modest,
/// constant demand, so throttling costs little (42 → 38 FPS, Table I
/// row 4).
#[must_use]
pub fn google_hangouts(seed: u64) -> AppModel {
    AppModel::new(
        &AppSpec {
            name: "Google Hangouts",
            cpu_per_frame: 46.0e6,
            gpu_per_frame: 4.0e6,
            target_fps: 60.0,
            cpu_threads: 1.0,
            phase_amplitude: 0.06,
            phase_period: 10.0,
            jitter: 0.05,
            interaction_period: 8.0,
        },
        seed,
    )
}

/// Facebook — "playing a game in the app": mixed CPU+GPU load, 35 → 24
/// FPS under throttling (Table I row 5).
#[must_use]
pub fn facebook(seed: u64) -> AppModel {
    AppModel::new(
        &AppSpec {
            name: "Facebook",
            cpu_per_frame: 28.0e6,
            gpu_per_frame: 15.5e6,
            target_fps: 60.0,
            cpu_threads: 2.0,
            phase_amplitude: 0.15,
            phase_period: 8.0,
            jitter: 0.10,
            interaction_period: 1.2,
        },
        seed,
    )
}

/// All five paper apps, in Table I order.
#[must_use]
pub fn all_paper_apps(seed: u64) -> Vec<AppModel> {
    vec![
        paper_io(seed),
        stickman_hook(seed.wrapping_add(1)),
        amazon(seed.wrapping_add(2)),
        google_hangouts(seed.wrapping_add(3)),
        facebook(seed.wrapping_add(4)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: Seconds = Seconds::new(0.01);

    /// Runs an app against fixed CPU/GPU cycle rates and returns median FPS.
    fn run(app: &mut AppModel, seconds: f64, cpu_rate: f64, gpu_rate: f64) -> f64 {
        let ticks = (seconds / DT.value()) as usize;
        for i in 0..ticks {
            let now = Seconds::new(i as f64 * DT.value());
            let d = app.demand(now, DT);
            app.deliver(
                d.cpu_cycles.min(cpu_rate * DT.value()),
                d.gpu_cycles.min(gpu_rate * DT.value()),
                now,
                DT,
            );
        }
        app.median_fps().unwrap_or(0.0)
    }

    #[test]
    fn games_are_gpu_heavy_and_shopping_is_cpu_heavy() {
        let mut game = paper_io(1);
        let mut shop = amazon(1);
        let dg = game.demand(Seconds::ZERO, DT);
        let ds = shop.demand(Seconds::ZERO, DT);
        // Games spend far more of their frame budget on the GPU than the
        // shopping app does.
        let game_ratio = dg.gpu_cycles / dg.cpu_cycles;
        let shop_ratio = ds.gpu_cycles / ds.cpu_cycles;
        assert!(
            game_ratio > 5.0 * shop_ratio,
            "game {game_ratio} vs shop {shop_ratio}"
        );
        assert!(ds.cpu_cycles > ds.gpu_cycles);
    }

    #[test]
    fn paper_io_fps_band_at_adreno_rates() {
        // Unthrottled Adreno mix ~550 MHz; throttled ~370 MHz.
        let unthrottled = run(&mut paper_io(7), 30.0, 4e9, 560.0e6);
        let throttled = run(&mut paper_io(7), 30.0, 4e9, 370.0e6);
        assert!(
            (30.0..41.0).contains(&unthrottled),
            "unthrottled {unthrottled}"
        );
        assert!((19.0..27.0).contains(&throttled), "throttled {throttled}");
        assert!(throttled < unthrottled);
    }

    #[test]
    fn stickman_is_near_vsync_unthrottled() {
        let fps = run(&mut stickman_hook(7), 30.0, 4e9, 520.0e6);
        assert!(fps > 50.0, "stickman unthrottled {fps}");
    }

    #[test]
    fn hangouts_is_robust_to_moderate_throttling() {
        // Rates chosen near the paper's operating point: ~42 FPS free,
        // ~38 FPS throttled (a ~10% drop, the mildest in Table I).
        let free = run(&mut google_hangouts(7), 30.0, 1.96e9, 500.0e6);
        let capped = run(&mut google_hangouts(7), 30.0, 1.77e9, 390.0e6);
        assert!((38.0..48.0).contains(&free), "free {free}");
        let drop = (free - capped) / free.max(1e-9);
        assert!(drop < 0.2, "hangouts should degrade mildly, dropped {drop}");
    }

    #[test]
    fn interactions_fire_at_the_configured_cadence() {
        let mut game = paper_io(3);
        let mut count = 0;
        for i in 0..1000 {
            let d = game.demand(Seconds::new(i as f64 * 0.01), DT);
            if d.interaction {
                count += 1;
            }
        }
        // 10 s at one interaction per second.
        assert!((9..=11).contains(&count), "interactions {count}");
    }

    #[test]
    fn hangouts_rarely_interacts() {
        let mut app = google_hangouts(3);
        let mut count = 0;
        for i in 0..1000 {
            if app.demand(Seconds::new(i as f64 * 0.01), DT).interaction {
                count += 1;
            }
        }
        assert!(count <= 2, "video call should not be touch-driven: {count}");
    }

    #[test]
    fn demand_is_deterministic_per_seed() {
        let mut a = facebook(9);
        let mut b = facebook(9);
        for i in 0..100 {
            let now = Seconds::new(i as f64 * 0.01);
            assert_eq!(a.demand(now, DT), b.demand(now, DT));
        }
    }

    #[test]
    fn complexity_varies_over_time() {
        let mut game = paper_io(5);
        let mut demands = Vec::new();
        for i in 0..2000 {
            let now = Seconds::new(i as f64 * 0.01);
            demands.push(game.demand(now, DT).gpu_cycles);
            game.deliver(0.0, 0.0, now, DT);
        }
        let max = demands.iter().copied().fold(0.0, f64::max);
        let min = demands.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max > min * 1.2, "scene complexity must vary: {min}..{max}");
    }

    #[test]
    fn all_paper_apps_has_table1_order() {
        let apps = all_paper_apps(1);
        let names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Paper.io",
                "Stickman Hook",
                "Amazon",
                "Google Hangouts",
                "Facebook"
            ]
        );
    }
}
