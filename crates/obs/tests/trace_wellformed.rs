//! Full-trace well-formedness: instead of substring asserts, parse the
//! exported Chrome trace with a minimal JSON checker and validate the
//! event structure — metadata rows, spans, and counter tracks.

use mpt_obs::trace::{chrome_trace_json_full, SIM_PID, WALL_PID};
use mpt_obs::{Recorder, SpanRecord};

/// A minimal JSON value for structural checks — not a general parser,
/// just enough grammar (and exactly the grammar) the exporters emit.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end".to_owned())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at {}, found {:?}",
                b as char, self.pos, self.bytes[self.pos] as char
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected byte {:?} at {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("bad object sep {:?}", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("bad array sep {:?}", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("short \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte {b:#x} in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let s =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at {start}: {e}"))
    }
}

fn parse(s: &str) -> Json {
    Parser::new(s).parse().expect("trace must be valid JSON")
}

fn sample_trace() -> String {
    let rec = Recorder::new();
    {
        let _tick = rec.span("tick", "tick");
        let _stage = rec.span("stage", "power");
    }
    let temp = rec.register_track("temp_max_c", "C");
    let fps = rec.register_track("fps", "fps");
    for i in 0..50u64 {
        rec.sample_track(temp, i * 100_000, 35.0 + i as f64 * 0.1);
        rec.sample_track(fps, i * 100_000, 60.0 - i as f64 * 0.2);
    }
    chrome_trace_json_full(&rec.spans(), &rec.tracks(), "wellformed \"test\"\n")
}

#[test]
fn full_trace_parses_and_has_expected_structure() {
    let json = parse(&sample_trace());
    let events = json
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(
        json.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );

    let mut meta = 0;
    let mut spans = 0;
    let mut counters = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let pid = ev.get("pid").and_then(Json::as_num).expect("pid");
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        match ph {
            "M" => meta += 1,
            "X" => {
                spans += 1;
                assert_eq!(pid, f64::from(WALL_PID));
                assert!(ev.get("ts").and_then(Json::as_num).is_some());
                assert!(ev.get("dur").and_then(Json::as_num).is_some());
                assert!(ev.get("tid").and_then(Json::as_num).is_some());
            }
            "C" => {
                counters += 1;
                assert_eq!(pid, f64::from(SIM_PID));
                let value = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_num)
                    .expect("counter value");
                assert!(value.is_finite());
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(spans, 2);
    assert_eq!(counters, 100);
    // Wall process + >=1 thread row + sim process.
    assert!(meta >= 3);

    // The escaped process name round-trips through the parser.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
        })
        .collect();
    assert!(names.contains(&"wellformed \"test\"\n"));
    assert!(names.contains(&"wellformed \"test\"\n [sim time]"));
}

#[test]
fn counter_track_names_carry_units() {
    let json = parse(&sample_trace());
    let events = json.get("traceEvents").and_then(Json::as_arr).unwrap();
    let track_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(track_names.contains(&"temp_max_c [C]"));
    assert!(track_names.contains(&"fps [fps]"));
}

#[test]
fn counter_timestamps_are_monotone_per_track() {
    let json = parse(&sample_trace());
    let events = json.get("traceEvents").and_then(Json::as_arr).unwrap();
    let mut last_ts: Vec<(String, f64)> = Vec::new();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("C") {
            continue;
        }
        let name = ev.get("name").and_then(Json::as_str).unwrap().to_owned();
        let ts = ev.get("ts").and_then(Json::as_num).unwrap();
        match last_ts.iter_mut().find(|(n, _)| *n == name) {
            Some((_, last)) => {
                assert!(ts >= *last, "track {name} timestamps must be sorted");
                *last = ts;
            }
            None => last_ts.push((name, ts)),
        }
    }
    assert_eq!(last_ts.len(), 2);
}

#[test]
fn metrics_json_snapshot_is_wellformed_too() {
    let rec = Recorder::new();
    let h = rec.register_histogram("stage:power");
    rec.record_duration(h, std::time::Duration::from_micros(10));
    let json = parse(&rec.snapshot().to_json());
    assert!(json.get("counters").is_some());
    let hists = json.get("histograms").and_then(Json::as_arr).unwrap();
    assert_eq!(
        hists[0].get("name").and_then(Json::as_str),
        Some("stage:power")
    );
}

#[test]
fn spans_only_trace_parses() {
    let spans: Vec<SpanRecord> = Recorder::new().spans();
    let json = parse(&chrome_trace_json_full(&spans, &[], "empty"));
    let events = json.get("traceEvents").and_then(Json::as_arr).unwrap();
    assert_eq!(events.len(), 1); // just the process_name metadata row
}
