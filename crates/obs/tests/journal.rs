//! Journal subscriber-protocol semantics: a subscriber that joins with a
//! snapshot and then follows deltas must converge on the same state as
//! one that watched from the start.

use std::collections::BTreeMap;

use mpt_obs::journal::{cell_scope, normalized_replay};
use mpt_obs::{Counter, JournalKind, Recorder};

/// Folds `CounterDelta` events into a counter-name -> total map the way a
/// live subscriber does: reconcile on the carried `total` (idempotent
/// under snapshot/delta overlap), not by summing deltas.
fn apply_deltas(state: &mut BTreeMap<String, u64>, events: &[mpt_obs::JournalEvent]) {
    for ev in events {
        if let JournalKind::CounterDelta { counter, total, .. } = &ev.kind {
            let slot = state.entry(counter.name().to_owned()).or_insert(0);
            *slot = (*slot).max(*total);
        }
    }
}

#[test]
fn snapshot_plus_delta_replay_equals_direct_observation() {
    let rec = Recorder::new();
    let journal = rec.journal();

    // Phase 1: activity before the subscriber joins.
    rec.add(Counter::Ticks, 100);
    rec.add(Counter::ThrottleEvents, 3);
    journal.sample_counters(&rec);
    journal.emit(None, JournalKind::CampaignStarted { cells: 2 });

    // The subscriber joins: snapshot first, then deltas from its cursor.
    let snap = journal.snapshot(&rec);
    let mut follower: BTreeMap<String, u64> = snap
        .metrics
        .counters
        .iter()
        .filter(|(_, v)| *v > 0)
        .cloned()
        .collect();

    // Phase 2: activity after the join.
    rec.add(Counter::Ticks, 50);
    rec.add(Counter::Migrations, 7);
    journal.sample_counters(&rec);

    let delta = journal.poll(snap.cursor);
    assert_eq!(delta.dropped, 0, "nothing overwritten in a fresh ring");
    apply_deltas(&mut follower, &delta.events);

    // Direct observation: read the recorder itself at the end.
    let direct: BTreeMap<String, u64> = rec
        .snapshot()
        .counters
        .into_iter()
        .filter(|(_, v)| *v > 0)
        .collect();
    assert_eq!(follower, direct, "snapshot+delta replay must converge");

    // And the full event stream from zero is the snapshot-prefix plus
    // the post-cursor delta, with no seam.
    let all = journal.poll(0);
    let suffix: Vec<_> = all
        .events
        .iter()
        .filter(|e| e.seq >= snap.cursor)
        .cloned()
        .collect();
    assert_eq!(suffix, delta.events);
}

#[test]
fn ring_lap_dropped_counts_are_exact_across_polls() {
    let rec = Recorder::with_journal_capacity(16);
    let journal = rec.journal();
    for i in 0..40 {
        journal.emit(None, JournalKind::CampaignStarted { cells: i });
    }
    // A reader starting from 0 lost exactly the overwritten prefix.
    let d = journal.poll(0);
    assert_eq!(d.dropped, 24);
    assert_eq!(d.events.len(), 16);
    assert_eq!(d.next_cursor, 40);

    // A reader that kept pace drops nothing.
    let mut cursor = 0;
    let rec2 = Recorder::with_journal_capacity(16);
    let j2 = rec2.journal();
    let mut seen = 0u64;
    let mut dropped = 0u64;
    for i in 0..40 {
        j2.emit(None, JournalKind::CampaignStarted { cells: i });
        if i % 8 == 7 {
            let d = j2.poll(cursor);
            seen += d.events.len() as u64;
            dropped += d.dropped;
            cursor = d.next_cursor;
        }
    }
    assert_eq!(seen + dropped, 40);
    assert_eq!(dropped, 0, "a keeping-pace reader never gets lapped");
}

#[test]
fn dropped_plus_delivered_is_conserved_under_concurrency() {
    let rec = std::sync::Arc::new(Recorder::with_journal_capacity(32));
    let total: u64 = 4 * 400;
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let rec = std::sync::Arc::clone(&rec);
            s.spawn(move || {
                let _scope = cell_scope(t);
                for i in 0..400u64 {
                    rec.journal().emit(
                        None,
                        JournalKind::StageRollup {
                            passes: i,
                            stage_runs: 0,
                            wall_us: 0,
                        },
                    );
                }
            });
        }
    });
    let d = rec.journal().poll(0);
    assert_eq!(
        d.events.len() as u64 + d.dropped,
        total,
        "every emitted sequence number is either delivered or counted dropped"
    );
    assert_eq!(d.next_cursor, total);
}

#[test]
fn snapshot_progress_tracks_cells_and_eta() {
    let rec = Recorder::new();
    let journal = rec.journal();
    journal.emit(None, JournalKind::CampaignStarted { cells: 4 });
    {
        let _s = cell_scope(0);
        journal.emit(
            None,
            JournalKind::CellStarted {
                label: "trips=70".into(),
            },
        );
        journal.emit(
            None,
            JournalKind::CellFinished {
                label: "trips=70".into(),
                peak_temp_c: 71.5,
            },
        );
    }
    {
        let _s = cell_scope(1);
        journal.emit(
            None,
            JournalKind::CellStarted {
                label: "trips=75".into(),
            },
        );
    }
    rec.add(Counter::Ticks, 1000);
    let snap = journal.snapshot(&rec);
    assert_eq!((snap.cells_total, snap.cells_done), (4, 1));
    assert_eq!(snap.in_flight.len(), 1);
    assert_eq!(snap.in_flight[0].cell, 1);
    assert_eq!(snap.in_flight[0].label, "trips=75");
    assert_eq!(snap.ticks_total, 1000);
    let eta = snap.eta_s.expect("1 of 4 done yields an ETA");
    assert!(eta >= 0.0);
    let json = snap.to_json();
    assert!(json.contains("\"cells_total\": 4"));
    assert!(json.contains("\"cells_done\": 1"));
    assert!(json.contains("\"label\": \"trips=75\""));
    assert!(json.contains("\"mpt_ticks_total\": 1000"));
}

#[test]
fn normalized_replay_is_stable_under_interleaving() {
    // Emit the same logical per-cell streams in two different global
    // interleavings (what different --jobs schedules produce) and
    // require the normalized replay to be bit-identical.
    let render = |order: &[(u32, u64)]| {
        let rec = Recorder::new();
        let journal = rec.journal();
        journal.emit(None, JournalKind::CampaignStarted { cells: 2 });
        for &(cell, step) in order {
            let _s = cell_scope(cell);
            journal.emit(
                Some(step * 1000),
                JournalKind::AlertFired {
                    rule: "temp_above".into(),
                    message: format!("cell {cell} step {step}"),
                },
            );
        }
        // Sampler noise must not leak into the deterministic replay.
        rec.add(Counter::Ticks, u64::from(order.len() as u32));
        journal.sample_counters(&rec);
        normalized_replay(&journal.poll(0).events)
    };
    let sequential = render(&[(0, 1), (0, 2), (1, 1), (1, 2)]);
    let interleaved = render(&[(1, 1), (0, 1), (1, 2), (0, 2)]);
    assert_eq!(sequential, interleaved);
    assert!(!sequential.contains("counter_delta"));
}

#[test]
fn null_recorder_journal_is_free_and_inert() {
    let rec = Recorder::null();
    let journal = rec.journal();
    assert!(!journal.is_enabled());
    assert_eq!(journal.capacity(), 0);
    assert_eq!(
        journal.emit(None, JournalKind::CampaignStarted { cells: 9 }),
        None
    );
    journal.sample_counters(&rec);
    let d = journal.poll(0);
    assert!(d.events.is_empty() && d.dropped == 0);
    let snap = journal.snapshot(&rec);
    assert_eq!((snap.cells_total, snap.cursor), (0, 0));
}
