//! Metrics exposition: Prometheus-style text and a JSON snapshot.
//!
//! Both formats render the same [`MetricsSnapshot`]. Counter totals are
//! deterministic; histogram summaries (being wall-clock) are not — the
//! determinism contract covers *which* metrics exist and the counter
//! values, never timing.

use crate::metrics::Counter;
use crate::trace::escape_json;

/// Summary of one registered histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Registered name, either plain (`"tick"`) or `family:label`
    /// (`"stage:power"`).
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples, nanoseconds.
    pub sum_ns: u64,
    /// Mean sample, nanoseconds.
    pub mean_ns: f64,
    /// Estimated median, nanoseconds.
    pub p50_ns: u64,
    /// Estimated 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// Estimated 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Largest sample, nanoseconds.
    pub max_ns: u64,
}

impl HistSnapshot {
    /// Splits the registered name into a Prometheus metric family and an
    /// optional label: `"stage:power"` becomes
    /// (`mpt_stage_seconds`, `Some(("stage", "power"))`), a plain
    /// `"tick"` becomes (`mpt_tick_seconds`, `None`).
    #[must_use]
    pub fn family(&self) -> (String, Option<(&str, &str)>) {
        match self.name.split_once(':') {
            Some((fam, label)) => (format!("mpt_{fam}_seconds"), Some((fam, label))),
            None => (format!("mpt_{}_seconds", self.name), None),
        }
    }
}

/// A point-in-time copy of every metric a recorder holds.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every pre-registered counter, in id order.
    pub counters: Vec<(String, u64)>,
    /// Every registered histogram, in id order.
    pub histograms: Vec<HistSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter by exposition name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The deterministic half of the snapshot: counter names and values
    /// only — bit-identical across worker counts for the same workload.
    #[must_use]
    pub fn deterministic_counters(&self) -> Vec<(String, u64)> {
        self.counters.clone()
    }

    /// Renders the Prometheus-style text exposition: counters as
    /// `counter` metrics, histograms as `summary` metrics in seconds with
    /// p50/p95/p99 quantiles. Every family carries a `# HELP` line before
    /// its `# TYPE` line, as the exposition format prescribes.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let help = Counter::help_for_name(name).unwrap_or("Event counter.");
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        let s = |ns: f64| ns * 1e-9;
        let mut helped: Vec<String> = Vec::new();
        for h in &self.histograms {
            let (family, label) = h.family();
            let tag = |quantile: &str| match label {
                Some((k, v)) => format!("{{{k}=\"{v}\",quantile=\"{quantile}\"}}"),
                None => format!("{{quantile=\"{quantile}\"}}"),
            };
            let bare = match label {
                Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
                None => String::new(),
            };
            // One HELP/TYPE pair per family — labelled histograms of the
            // same family ("stage:power", "stage:thermal") share it.
            if !helped.contains(&family) {
                out.push_str(&format!(
                    "# HELP {family} Latency summary in seconds (p50/p95/p99).\n"
                ));
                out.push_str(&format!("# TYPE {family} summary\n"));
                helped.push(family.clone());
            }
            for (q, ns) in [("0.5", h.p50_ns), ("0.95", h.p95_ns), ("0.99", h.p99_ns)] {
                out.push_str(&format!("{family}{} {:e}\n", tag(q), s(ns as f64)));
            }
            out.push_str(&format!("{family}_sum{bare} {:e}\n", s(h.sum_ns as f64)));
            out.push_str(&format!("{family}_count{bare} {}\n", h.count));
        }
        out
    }

    /// Renders the snapshot as JSON (no external dependencies: the
    /// grammar here is numbers, strings and two array fields).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {value}", escape_json(name)));
        }
        out.push_str("\n  },\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"count\": {}, \"sum_ns\": {}, \"mean_ns\": {:.1}, \
                 \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                escape_json(&h.name),
                h.count,
                h.sum_ns,
                h.mean_ns,
                h.p50_ns,
                h.p95_ns,
                h.p99_ns,
                h.max_ns
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("mpt_ticks_total".into(), 100),
                ("mpt_events_migration_total".into(), 2),
            ],
            histograms: vec![HistSnapshot {
                name: "stage:power".into(),
                count: 100,
                sum_ns: 1_000_000,
                mean_ns: 10_000.0,
                p50_ns: 8191,
                p95_ns: 16383,
                p99_ns: 16383,
                max_ns: 20_000,
            }],
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# HELP mpt_ticks_total Simulator ticks executed.\n"));
        assert!(text.contains("# TYPE mpt_ticks_total counter"));
        assert!(text.contains("mpt_ticks_total 100"));
        assert!(text.contains("# HELP mpt_stage_seconds "));
        assert!(text.contains("# TYPE mpt_stage_seconds summary"));
        assert!(text.contains("mpt_stage_seconds{stage=\"power\",quantile=\"0.5\"}"));
        assert!(text.contains("mpt_stage_seconds_count{stage=\"power\"} 100"));
    }

    #[test]
    fn prometheus_every_family_has_one_help_and_type() {
        let mut snap = sample();
        snap.histograms.push(HistSnapshot {
            name: "stage:thermal".into(),
            ..snap.histograms[0].clone()
        });
        let text = snap.to_prometheus();
        // Two histograms of the same family share one HELP/TYPE pair.
        assert_eq!(text.matches("# HELP mpt_stage_seconds ").count(), 1);
        assert_eq!(text.matches("# TYPE mpt_stage_seconds ").count(), 1);
        // Every exposed metric line belongs to a family introduced by a
        // HELP line; every HELP is immediately followed by its TYPE.
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let fam = rest.split_whitespace().next().unwrap();
                assert!(
                    lines[i + 1].starts_with(&format!("# TYPE {fam} ")),
                    "HELP for {fam} not followed by TYPE"
                );
            }
        }
    }

    #[test]
    fn json_snapshot_shape() {
        let json = sample().to_json();
        assert!(json.contains("\"mpt_ticks_total\": 100"));
        assert!(json.contains("\"name\": \"stage:power\""));
        assert!(json.contains("\"p95_ns\": 16383"));
    }

    #[test]
    fn family_split() {
        let h = sample().histograms[0].clone();
        assert_eq!(
            h.family(),
            ("mpt_stage_seconds".to_owned(), Some(("stage", "power")))
        );
    }
}
