#![warn(missing_docs)]

//! Zero-dependency observability for the simulator stack.
//!
//! The paper's entire methodology is *measurement* — on-SoC sensors plus
//! an external DAQ watching the platform while the governor acts. This
//! crate gives the reproduction the same treatment: a [`Recorder`] that
//! watches the simulator while it runs, with
//!
//! * **spans** — monotonic wall-clock intervals (per pipeline stage, per
//!   tick, per campaign cell), exportable as Chrome trace-event JSON that
//!   loads directly into `chrome://tracing` or [Perfetto](https://ui.perfetto.dev);
//! * **counters** — pre-registered, fixed-id event counts (throttle
//!   events, trip crossings, governor frequency changes, migrations,
//!   sysfs writes). Counting is fully deterministic: two runs of the same
//!   scenario produce bit-identical totals whatever the worker count —
//!   only span *durations* vary between runs;
//! * **histograms** — log-scale latency histograms with p50/p95/p99,
//!   registered once by name and recorded by id on the hot path;
//! * **counter tracks** — per-tick domain series (temperature, power,
//!   frequency, FPS) in *simulation time*, exported as Chrome `"ph":"C"`
//!   counter events so the paper's Figure 1/3/5-style curves render as
//!   Perfetto tracks next to the stage spans;
//! * **derived observables + alerts** ([`analyze`]) — online computation
//!   of the paper's headline metrics (time-above-trip, throttle-attributed
//!   FPS loss, thermal headroom, stability-margin drift) and a
//!   declarative alert-rule engine (`temp_above`, `fps_below`,
//!   `throttle_storm`, `runaway`), all deterministic across worker
//!   counts;
//! * **exporters** — Chrome trace JSON ([`trace`]), a Prometheus-style
//!   text exposition and a JSON snapshot ([`export`]).
//!
//! Everything is allocation-light by design: counters and histograms are
//! fixed atomic slots addressed by pre-registered ids, spans push one
//! small record into a sharded buffer, and no formatting happens until an
//! exporter is invoked. The disabled path ([`Recorder::null`], the
//! "NullRecorder") reduces every operation to a branch on a `bool`.
//!
//! # Examples
//!
//! ```
//! use mpt_obs::{Counter, Recorder};
//!
//! let rec = Recorder::new();
//! let hist = rec.register_histogram("stage:power");
//! {
//!     let _span = rec.span_with_hist("stage", "power", hist);
//!     // ... timed work ...
//! }
//! rec.incr(Counter::ThrottleEvents);
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("mpt_throttle_events_total"), Some(1));
//! assert!(!rec.spans().is_empty());
//! ```

pub mod analyze;
pub mod clock;
pub mod export;
pub mod hist;
pub mod journal;
pub mod metrics;
pub mod recorder;
pub mod span;
pub mod trace;

pub use analyze::{Alert, AlertEngine, AlertRule, DerivedSummary, DerivedTracker, TickSample};
pub use export::{HistSnapshot, MetricsSnapshot};
pub use hist::{HistId, Histogram};
pub use journal::{Delta, Journal, JournalEvent, JournalKind, Snapshot};
pub use metrics::Counter;
pub use recorder::Recorder;
pub use span::{SpanGuard, SpanRecord};
pub use trace::{CounterTrack, TrackId};
