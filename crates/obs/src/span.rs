//! Monotonic wall-clock spans.
//!
//! A span is opened with [`Recorder::span`](crate::Recorder::span) and
//! closed when its [`SpanGuard`] drops; the finished [`SpanRecord`] lands
//! in a per-lane shard of the recorder's span buffer. Lanes are stable
//! per OS thread (campaign workers each get their own lane), and become
//! the `tid` rows of the exported Chrome trace.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use crate::hist::HistId;
use crate::recorder::Recorder;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (a stage name, `"tick"`, or a campaign-cell label).
    pub name: Cow<'static, str>,
    /// Category, e.g. `"stage"`, `"tick"`, `"cell"`.
    pub cat: &'static str,
    /// The lane (per-thread row) the span ran on.
    pub lane: u32,
    /// Start time in microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

static NEXT_LANE: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static LANE: u32 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's lane: a small integer stable for the thread's
/// lifetime and unique across threads.
#[must_use]
pub fn current_lane() -> u32 {
    LANE.with(|l| *l)
}

/// An open span; records itself into the recorder on drop. Obtained from
/// [`Recorder::span`](crate::Recorder::span); inert (a no-op on drop)
/// when the recorder is disabled.
#[must_use = "a span measures the scope it is held for"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    rec: Option<&'a Recorder>,
    name: Option<Cow<'static, str>>,
    cat: &'static str,
    hist: Option<HistId>,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn new(
        rec: Option<&'a Recorder>,
        name: Cow<'static, str>,
        cat: &'static str,
        hist: Option<HistId>,
    ) -> Self {
        Self {
            rec,
            name: Some(name),
            cat,
            hist,
            start: crate::clock::now(),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(rec) = self.rec else { return };
        let elapsed = crate::clock::elapsed(self.start);
        if let Some(hist) = self.hist {
            rec.record_duration(hist, elapsed);
        }
        let name = self.name.take().unwrap_or(Cow::Borrowed("?"));
        rec.finish_span(SpanRecord {
            name,
            cat: self.cat,
            lane: current_lane(),
            start_us: rec.micros_since_epoch(self.start),
            dur_us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_differ_across_threads() {
        let here = current_lane();
        assert_eq!(here, current_lane(), "lane is stable within a thread");
        let there = std::thread::spawn(current_lane).join().unwrap();
        assert_ne!(here, there);
    }
}
