//! Online derived observables and the alert-rule engine.
//!
//! This module computes the paper's headline metrics *while the run is in
//! flight*, from a per-tick [`TickSample`] stream: time above the trip
//! reference, throttle-attributed FPS loss (mean FPS inside vs. outside
//! throttle windows), thermal headroom, and the temperature-trend /
//! power–temperature-coupling slopes behind the stability-margin analysis
//! of Bhat et al. Everything is pure `f64` accumulator arithmetic driven
//! only by simulation time — no wall clock, no allocation per tick beyond
//! the alert log — so results are bit-identical across worker counts.
//!
//! [`AlertEngine`] evaluates declarative [`AlertRule`]s against the same
//! stream. Sustain-style rules (`temp_above`, `fps_below`) arm when their
//! predicate holds, fire once the condition has held for `sustain_s`, and
//! re-arm only after the predicate clears — one alert per sustained
//! episode, not one per tick. Windowed rules (`throttle_storm`,
//! `runaway`) evaluate over a trailing simulation-time window.

use std::collections::VecDeque;

/// One per-tick observation handed to the tracker and the alert engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickSample {
    /// Simulation time at the *end* of the tick, seconds.
    pub t_s: f64,
    /// Tick length, seconds.
    pub dt_s: f64,
    /// Control temperature (the thermal governor's input), °C.
    pub temp_c: f64,
    /// Total platform power this tick, W.
    pub power_w: f64,
    /// Frame rate of the foreground pipeline, if any workload reports one.
    pub fps: Option<f64>,
    /// Whether any component was frequency-capped during this tick.
    pub throttled: bool,
    /// Throttle-related events (cap changes) logged during this tick.
    pub throttle_events: u64,
}

/// Linear-regression accumulator: slope of `y` against `x` over every
/// sample seen (the classic closed form, online).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct SlopeAcc {
    n: f64,
    sum_x: f64,
    sum_y: f64,
    sum_xx: f64,
    sum_xy: f64,
}

impl SlopeAcc {
    fn push(&mut self, x: f64, y: f64) {
        self.n += 1.0;
        self.sum_x += x;
        self.sum_y += y;
        self.sum_xx += x * x;
        self.sum_xy += x * y;
    }

    fn slope(&self) -> f64 {
        if self.n < 2.0 {
            return 0.0;
        }
        let denom = self.n * self.sum_xx - self.sum_x * self.sum_x;
        if denom.abs() < f64::EPSILON {
            return 0.0;
        }
        (self.n * self.sum_xy - self.sum_x * self.sum_y) / denom
    }
}

/// Columnar kernel: total time spent above `trip_c`, from parallel
/// `dt` / `temperature` columns.
///
/// This is the query-layer read path for the observable: a sequential
/// scan over two dense columns, summing in row order — the same
/// additions in the same order as the old per-tick accumulator, so the
/// result is bit-identical to online accumulation.
///
/// # Panics
///
/// Panics if the columns disagree in length.
#[must_use]
pub fn time_above_trip(dts: &[f64], temps: &[f64], trip_c: f64) -> f64 {
    assert_eq!(dts.len(), temps.len(), "dt/temp columns must be parallel");
    let mut total = 0.0;
    for (&dt, &temp) in dts.iter().zip(temps) {
        if temp > trip_c {
            total += dt;
        }
    }
    total
}

/// Tracker for the derived per-run observables.
///
/// Mostly online accumulators; time-above-trip instead buffers `dt` and
/// temperature as plain columns and computes the observable with the
/// columnar [`time_above_trip`] kernel at summary time — the
/// representative migration from "re-walk rows per question" to "scan
/// the column you need".
#[derive(Debug, Clone, Default)]
pub struct DerivedTracker {
    /// Trip reference, °C: the lowest thermal-governor trip (step-wise)
    /// or the IPA control temperature. `None` when throttling is
    /// disabled — time-above-trip and headroom are then undefined.
    trip_c: Option<f64>,
    elapsed_s: f64,
    peak_temp_c: Option<f64>,
    /// Per-tick `dt` column, buffered for [`time_above_trip`] (only
    /// when a trip reference exists; empty otherwise).
    dt_col: Vec<f64>,
    /// Per-tick control-temperature column, parallel to `dt_col`.
    temp_col: Vec<f64>,
    time_throttled_s: f64,
    throttle_events: u64,
    // FPS-seconds and seconds, split by throttle state. Weighting by dt
    // keeps the means exact under variable decimation.
    fps_weight_throttled: f64,
    fps_sum_throttled: f64,
    fps_weight_free: f64,
    fps_sum_free: f64,
    temp_trend: SlopeAcc,
    power_coupling: SlopeAcc,
}

impl DerivedTracker {
    /// A tracker with no trip reference (throttling disabled).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A tracker computing time-above-trip and headroom against `trip_c`.
    #[must_use]
    pub fn with_trip(trip_c: f64) -> Self {
        Self {
            trip_c: Some(trip_c),
            ..Self::default()
        }
    }

    /// The trip reference, if one was configured.
    #[must_use]
    pub fn trip_c(&self) -> Option<f64> {
        self.trip_c
    }

    /// Folds one tick into the accumulators.
    pub fn observe(&mut self, s: &TickSample) {
        self.elapsed_s = s.t_s;
        self.peak_temp_c = Some(match self.peak_temp_c {
            Some(p) if p >= s.temp_c => p,
            _ => s.temp_c,
        });
        if self.trip_c.is_some() {
            self.dt_col.push(s.dt_s);
            self.temp_col.push(s.temp_c);
        }
        if s.throttled {
            self.time_throttled_s += s.dt_s;
        }
        self.throttle_events += s.throttle_events;
        if let Some(fps) = s.fps {
            if s.throttled {
                self.fps_weight_throttled += s.dt_s;
                self.fps_sum_throttled += fps * s.dt_s;
            } else {
                self.fps_weight_free += s.dt_s;
                self.fps_sum_free += fps * s.dt_s;
            }
        }
        self.temp_trend.push(s.t_s, s.temp_c);
        self.power_coupling.push(s.temp_c, s.power_w);
    }

    /// The derived summary over everything observed so far.
    #[must_use]
    pub fn summary(&self) -> DerivedSummary {
        let mean = |sum: f64, weight: f64| {
            if weight > 0.0 {
                Some(sum / weight)
            } else {
                None
            }
        };
        let fps_mean_throttled = mean(self.fps_sum_throttled, self.fps_weight_throttled);
        let fps_mean_free = mean(self.fps_sum_free, self.fps_weight_free);
        let (fps_loss, fps_loss_pct) = match (fps_mean_free, fps_mean_throttled) {
            (Some(free), Some(thr)) => {
                let loss = free - thr;
                let pct = if free.abs() > f64::EPSILON {
                    Some(loss / free * 100.0)
                } else {
                    None
                };
                (Some(loss), pct)
            }
            _ => (None, None),
        };
        let trend = self.temp_trend.slope();
        DerivedSummary {
            elapsed_s: self.elapsed_s,
            peak_temp_c: self.peak_temp_c,
            trip_c: self.trip_c,
            time_above_trip_s: self.trip_c.map_or(0.0, |trip| {
                time_above_trip(&self.dt_col, &self.temp_col, trip)
            }),
            thermal_headroom_c: match (self.trip_c, self.peak_temp_c) {
                (Some(trip), Some(peak)) => Some(trip - peak),
                _ => None,
            },
            time_throttled_s: self.time_throttled_s,
            throttle_events: self.throttle_events,
            fps_mean_free,
            fps_mean_throttled,
            throttle_fps_loss: fps_loss,
            throttle_fps_loss_pct: fps_loss_pct,
            temp_trend_c_per_s: trend,
            power_temp_coupling_w_per_c: self.power_coupling.slope(),
            stability_margin_drift_c_per_s: self.trip_c.map(|_| -trend),
        }
    }
}

/// The derived per-run observables — the paper's headline metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedSummary {
    /// Simulation time covered, seconds.
    pub elapsed_s: f64,
    /// Peak control temperature, °C (`None` if no ticks were observed).
    pub peak_temp_c: Option<f64>,
    /// Trip reference, °C, if throttling was configured.
    pub trip_c: Option<f64>,
    /// Simulated seconds spent with the control temperature above the
    /// trip reference.
    pub time_above_trip_s: f64,
    /// `trip - peak` °C: positive means the run never reached the trip.
    pub thermal_headroom_c: Option<f64>,
    /// Simulated seconds spent with at least one component capped.
    pub time_throttled_s: f64,
    /// Total throttle-related events.
    pub throttle_events: u64,
    /// dt-weighted mean FPS outside throttle windows.
    pub fps_mean_free: Option<f64>,
    /// dt-weighted mean FPS inside throttle windows.
    pub fps_mean_throttled: Option<f64>,
    /// `fps_mean_free - fps_mean_throttled`: the throttle-attributed FPS
    /// loss (needs samples on both sides).
    pub throttle_fps_loss: Option<f64>,
    /// The FPS loss as a percentage of the un-throttled mean.
    pub throttle_fps_loss_pct: Option<f64>,
    /// Least-squares temperature slope over the whole run, °C/s.
    pub temp_trend_c_per_s: f64,
    /// Least-squares power-vs-temperature slope, W/°C — the coupling the
    /// stability analysis bounds.
    pub power_temp_coupling_w_per_c: f64,
    /// `-temp_trend` when a trip is configured: how fast the margin to
    /// the trip is growing (positive) or eroding (negative).
    pub stability_margin_drift_c_per_s: Option<f64>,
}

/// A declarative alert rule, evaluated per tick against the
/// [`TickSample`] stream.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertRule {
    /// Control temperature above `threshold_c` for at least `sustain_s`
    /// consecutive simulated seconds.
    TempAbove {
        /// Temperature threshold, °C.
        threshold_c: f64,
        /// Required consecutive time above threshold, seconds.
        sustain_s: f64,
    },
    /// FPS below `target` for at least `sustain_s` consecutive simulated
    /// seconds (ticks without an FPS reading don't count either way).
    FpsBelow {
        /// FPS floor.
        target: f64,
        /// Required consecutive time below target, seconds.
        sustain_s: f64,
    },
    /// At least `events` throttle events within any trailing `window_s`.
    ThrottleStorm {
        /// Event count threshold.
        events: u64,
        /// Trailing window length, seconds.
        window_s: f64,
    },
    /// Thermal runaway: temperature rising faster than `slope_c_per_s`
    /// over the trailing `window_s` while already throttled — throttling
    /// is engaged and losing.
    Runaway {
        /// Trailing window length, seconds.
        window_s: f64,
        /// Minimum sustained heating rate, °C/s.
        slope_c_per_s: f64,
    },
}

impl AlertRule {
    /// The rule's stable key, used in alert records and event logs.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            AlertRule::TempAbove { .. } => "temp_above",
            AlertRule::FpsBelow { .. } => "fps_below",
            AlertRule::ThrottleStorm { .. } => "throttle_storm",
            AlertRule::Runaway { .. } => "runaway",
        }
    }
}

/// One fired alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The firing rule's key (`"temp_above"`, ...).
    pub rule: &'static str,
    /// Simulation time of the firing, seconds.
    pub t_s: f64,
    /// The observed value that fired the rule (temperature, FPS, event
    /// count or slope, per rule).
    pub value: f64,
    /// Human-readable one-liner.
    pub message: String,
}

/// Per-rule evaluation state.
#[derive(Debug, Clone)]
enum RuleState {
    /// Sustain rules: how long the predicate has held, and whether the
    /// current episode already fired.
    Sustain { held_s: f64, fired: bool },
    /// Windowed event-count rules: firing times of recent events.
    Window {
        times: VecDeque<(f64, u64)>,
        fired: bool,
    },
    /// Runaway: trailing `(t, temp)` samples.
    Trail {
        samples: VecDeque<(f64, f64)>,
        fired: bool,
    },
}

/// Evaluates a fixed rule set against the per-tick sample stream.
#[derive(Debug, Clone, Default)]
pub struct AlertEngine {
    rules: Vec<(AlertRule, RuleState)>,
}

impl AlertEngine {
    /// An engine evaluating `rules` (an empty set is valid and cheap).
    #[must_use]
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let rules = rules
            .into_iter()
            .map(|r| {
                let state = match &r {
                    AlertRule::TempAbove { .. } | AlertRule::FpsBelow { .. } => {
                        RuleState::Sustain {
                            held_s: 0.0,
                            fired: false,
                        }
                    }
                    AlertRule::ThrottleStorm { .. } => RuleState::Window {
                        times: VecDeque::new(),
                        fired: false,
                    },
                    AlertRule::Runaway { .. } => RuleState::Trail {
                        samples: VecDeque::new(),
                        fired: false,
                    },
                };
                (r, state)
            })
            .collect();
        Self { rules }
    }

    /// Whether any rules are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Remaining simulated seconds until the earliest *armed* sustain
    /// deadline would fire: a sustain rule is armed when its predicate
    /// has held for part of an episode (`held_s > 0`) that has not fired
    /// yet. `None` when no sustain rule is mid-episode — the event-driven
    /// engine then has no alert deadline to schedule.
    #[must_use]
    pub fn next_deadline(&self) -> Option<f64> {
        self.rules
            .iter()
            .filter_map(|(rule, state)| {
                let sustain_s = match rule {
                    AlertRule::TempAbove { sustain_s, .. }
                    | AlertRule::FpsBelow { sustain_s, .. } => *sustain_s,
                    _ => return None,
                };
                match state {
                    RuleState::Sustain { held_s, fired } if *held_s > 0.0 && !fired => {
                        Some((sustain_s - held_s).max(0.0))
                    }
                    _ => None,
                }
            })
            .fold(None, |acc: Option<f64>, r| {
                Some(acc.map_or(r, |a| a.min(r)))
            })
    }

    /// The temperature thresholds watched by `temp_above` rules — the
    /// crossings the event-driven engine predicts from the LTI
    /// trajectory so a macro step never glides past an arming boundary.
    #[must_use]
    pub fn temp_thresholds(&self) -> Vec<f64> {
        self.rules
            .iter()
            .filter_map(|(rule, _)| match rule {
                AlertRule::TempAbove { threshold_c, .. } => Some(*threshold_c),
                _ => None,
            })
            .collect()
    }

    /// Evaluates every rule against one tick; returns the alerts that
    /// fire on this tick (usually none).
    pub fn observe(&mut self, s: &TickSample) -> Vec<Alert> {
        let mut fired = Vec::new();
        for (rule, state) in &mut self.rules {
            match (rule, state) {
                (
                    AlertRule::TempAbove {
                        threshold_c,
                        sustain_s,
                    },
                    RuleState::Sustain { held_s, fired: f },
                ) => {
                    if s.temp_c > *threshold_c {
                        *held_s += s.dt_s;
                        if !*f && *held_s >= *sustain_s {
                            *f = true;
                            fired.push(Alert {
                                rule: "temp_above",
                                t_s: s.t_s,
                                value: s.temp_c,
                                message: format!(
                                    "temp {:.2} C above {:.2} C for {:.2} s",
                                    s.temp_c, threshold_c, held_s
                                ),
                            });
                        }
                    } else {
                        *held_s = 0.0;
                        *f = false;
                    }
                }
                (
                    AlertRule::FpsBelow { target, sustain_s },
                    RuleState::Sustain { held_s, fired: f },
                ) => {
                    // Ticks without an FPS reading leave the state alone:
                    // a pipeline warming up is neither below nor above.
                    if let Some(fps) = s.fps {
                        if fps < *target {
                            *held_s += s.dt_s;
                            if !*f && *held_s >= *sustain_s {
                                *f = true;
                                fired.push(Alert {
                                    rule: "fps_below",
                                    t_s: s.t_s,
                                    value: fps,
                                    message: format!(
                                        "fps {fps:.1} below target {target:.1} for {held_s:.2} s"
                                    ),
                                });
                            }
                        } else {
                            *held_s = 0.0;
                            *f = false;
                        }
                    }
                }
                (
                    AlertRule::ThrottleStorm { events, window_s },
                    RuleState::Window { times, fired: f },
                ) => {
                    if s.throttle_events > 0 {
                        times.push_back((s.t_s, s.throttle_events));
                    }
                    while times.front().is_some_and(|&(t, _)| t < s.t_s - *window_s) {
                        times.pop_front();
                    }
                    let in_window: u64 = times.iter().map(|&(_, n)| n).sum();
                    if in_window >= *events {
                        if !*f {
                            *f = true;
                            fired.push(Alert {
                                rule: "throttle_storm",
                                t_s: s.t_s,
                                value: in_window as f64,
                                message: format!(
                                    "{in_window} throttle events within {window_s:.1} s"
                                ),
                            });
                        }
                    } else {
                        *f = false;
                    }
                }
                (
                    AlertRule::Runaway {
                        window_s,
                        slope_c_per_s,
                    },
                    RuleState::Trail { samples, fired: f },
                ) => {
                    samples.push_back((s.t_s, s.temp_c));
                    while samples.front().is_some_and(|&(t, _)| t < s.t_s - *window_s) {
                        samples.pop_front();
                    }
                    let full_window = samples
                        .front()
                        .is_some_and(|&(t, _)| s.t_s - t >= *window_s * 0.9);
                    let slope = match (samples.front(), samples.back()) {
                        (Some(&(t0, y0)), Some(&(t1, y1))) if t1 > t0 => (y1 - y0) / (t1 - t0),
                        _ => 0.0,
                    };
                    if full_window && s.throttled && slope >= *slope_c_per_s {
                        if !*f {
                            *f = true;
                            fired.push(Alert {
                                rule: "runaway",
                                t_s: s.t_s,
                                value: slope,
                                message: format!(
                                    "temp rising {slope:.3} C/s over {window_s:.1} s while throttled"
                                ),
                            });
                        }
                    } else {
                        *f = false;
                    }
                }
                _ => unreachable!("rule/state pairing fixed at construction"),
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(t_s: f64, temp_c: f64) -> TickSample {
        TickSample {
            t_s,
            dt_s: 0.1,
            temp_c,
            power_w: 2.0,
            fps: None,
            throttled: false,
            throttle_events: 0,
        }
    }

    #[test]
    fn tracker_accumulates_basics() {
        let mut tr = DerivedTracker::with_trip(41.0);
        for i in 1..=100 {
            let t = i as f64 * 0.1;
            let mut s = tick(t, 39.0 + t); // 39.1 .. 49.0
            s.throttled = s.temp_c > 41.0;
            tr.observe(&s);
        }
        let d = tr.summary();
        assert_eq!(d.trip_c, Some(41.0));
        assert!((d.elapsed_s - 10.0).abs() < 1e-9);
        assert!((d.peak_temp_c.unwrap() - 49.0).abs() < 1e-9);
        // temp crosses 41.0 at t=2.0; ~80 of 100 ticks above.
        assert!((d.time_above_trip_s - 8.0).abs() < 0.15);
        assert!((d.time_throttled_s - 8.0).abs() < 0.15);
        assert!((d.thermal_headroom_c.unwrap() - (41.0 - 49.0)).abs() < 1e-9);
        // Temperature rises 1 °C per second.
        assert!((d.temp_trend_c_per_s - 1.0).abs() < 1e-6);
        assert!((d.stability_margin_drift_c_per_s.unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn tracker_fps_split_by_throttle_state() {
        let mut tr = DerivedTracker::new();
        for i in 1..=40 {
            let throttled = i > 20;
            let mut s = tick(i as f64 * 0.1, 40.0);
            s.throttled = throttled;
            s.fps = Some(if throttled { 40.0 } else { 60.0 });
            tr.observe(&s);
        }
        let d = tr.summary();
        assert!((d.fps_mean_free.unwrap() - 60.0).abs() < 1e-9);
        assert!((d.fps_mean_throttled.unwrap() - 40.0).abs() < 1e-9);
        assert!((d.throttle_fps_loss.unwrap() - 20.0).abs() < 1e-9);
        assert!((d.throttle_fps_loss_pct.unwrap() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_tracker_summary_is_all_absent() {
        let d = DerivedTracker::new().summary();
        assert_eq!(d.peak_temp_c, None);
        assert_eq!(d.thermal_headroom_c, None);
        assert_eq!(d.throttle_fps_loss, None);
        assert_eq!(d.stability_margin_drift_c_per_s, None);
        assert_eq!(d.temp_trend_c_per_s, 0.0);
    }

    #[test]
    fn temp_above_fires_once_per_episode() {
        let mut eng = AlertEngine::new(vec![AlertRule::TempAbove {
            threshold_c: 41.0,
            sustain_s: 0.5,
        }]);
        let mut alerts = Vec::new();
        // Hot for 1 s, cool for 1 s, hot again for 1 s.
        for i in 1..=30 {
            let t = i as f64 * 0.1;
            let temp = if (10..20).contains(&i) { 39.0 } else { 42.0 };
            alerts.extend(eng.observe(&tick(t, temp)));
        }
        assert_eq!(alerts.len(), 2, "one alert per sustained episode");
        assert!(alerts.iter().all(|a| a.rule == "temp_above"));
        assert!(alerts[0].t_s < 1.0 && alerts[1].t_s > 2.0);
    }

    #[test]
    fn temp_above_needs_sustain() {
        let mut eng = AlertEngine::new(vec![AlertRule::TempAbove {
            threshold_c: 41.0,
            sustain_s: 5.0,
        }]);
        for i in 1..=30 {
            assert!(eng.observe(&tick(i as f64 * 0.1, 42.0)).is_empty());
        }
    }

    #[test]
    fn fps_below_ignores_missing_fps() {
        let mut eng = AlertEngine::new(vec![AlertRule::FpsBelow {
            target: 55.0,
            sustain_s: 0.3,
        }]);
        let mut alerts = Vec::new();
        for i in 1..=10 {
            let mut s = tick(i as f64 * 0.1, 40.0);
            // FPS only present on every second tick; below target.
            s.fps = if i % 2 == 0 { Some(30.0) } else { None };
            alerts.extend(eng.observe(&s));
        }
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "fps_below");
    }

    #[test]
    fn throttle_storm_counts_window() {
        let mut eng = AlertEngine::new(vec![AlertRule::ThrottleStorm {
            events: 5,
            window_s: 1.0,
        }]);
        let mut alerts = Vec::new();
        for i in 1..=30 {
            let mut s = tick(i as f64 * 0.1, 42.0);
            // A burst of events between t=1.0 and t=1.5.
            s.throttle_events = if (10..15).contains(&i) { 1 } else { 0 };
            alerts.extend(eng.observe(&s));
        }
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "throttle_storm");
        assert!((alerts[0].value - 5.0).abs() < 1e-9);
    }

    #[test]
    fn runaway_requires_throttled_and_slope() {
        let rule = AlertRule::Runaway {
            window_s: 1.0,
            slope_c_per_s: 0.5,
        };
        // Rising fast but never throttled: no alert.
        let mut eng = AlertEngine::new(vec![rule.clone()]);
        for i in 1..=30 {
            let t = i as f64 * 0.1;
            assert!(eng.observe(&tick(t, 35.0 + t)).is_empty());
        }
        // Rising fast while throttled: fires.
        let mut eng = AlertEngine::new(vec![rule]);
        let mut alerts = Vec::new();
        for i in 1..=30 {
            let t = i as f64 * 0.1;
            let mut s = tick(t, 35.0 + t);
            s.throttled = true;
            alerts.extend(eng.observe(&s));
        }
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "runaway");
    }

    #[test]
    fn columnar_time_above_trip_matches_online_accumulation() {
        let mut tracker = DerivedTracker::with_trip(40.0);
        let mut online = 0.0;
        for i in 0..500 {
            let temp_c = 35.0 + 10.0 * ((i as f64) * 0.11).sin();
            let dt_s = 0.001 + (i as f64) * 1e-6;
            if temp_c > 40.0 {
                online += dt_s;
            }
            tracker.observe(&TickSample {
                t_s: i as f64 * 0.001,
                dt_s,
                temp_c,
                power_w: 1.0,
                fps: None,
                throttled: false,
                throttle_events: 0,
            });
        }
        // Bit-identical, not approximately equal: the kernel performs
        // the same additions in the same order.
        assert_eq!(
            tracker.summary().time_above_trip_s.to_bits(),
            online.to_bits()
        );
    }

    #[test]
    fn time_above_trip_kernel_basics() {
        assert_eq!(time_above_trip(&[], &[], 40.0), 0.0);
        assert_eq!(
            time_above_trip(&[1.0, 2.0, 4.0], &[39.0, 41.0, 40.0], 40.0),
            2.0
        );
    }

    #[test]
    fn rule_keys() {
        assert_eq!(
            AlertRule::TempAbove {
                threshold_c: 0.0,
                sustain_s: 0.0
            }
            .key(),
            "temp_above"
        );
        assert_eq!(
            AlertRule::Runaway {
                window_s: 1.0,
                slope_c_per_s: 0.1
            }
            .key(),
            "runaway"
        );
    }
}
