//! Pre-registered counters with stable names and ids.
//!
//! Counters are the *deterministic* half of the recorder: every increment
//! corresponds to a simulated event (a throttle action, a migration, a
//! sysfs write), never to wall-clock behaviour, so totals are
//! bit-identical across runs and worker counts. Ids are fixed at compile
//! time — the hot path is one atomic add into a fixed slot, with no
//! lookup and no allocation.

/// A pre-registered counter.
///
/// The discriminant is the counter's slot index; [`Counter::name`] is its
/// stable Prometheus-style name. Both are part of the observability
/// contract (golden-tested), so new counters must be appended, never
/// reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Counter {
    /// Simulator ticks executed.
    Ticks,
    /// Pipeline stage executions (ticks × stages).
    StageRuns,
    /// Thermal-governor throttle actions applied (`SetMaxFreq`, incl.
    /// repeats of the same cap).
    ThrottleEvents,
    /// Cap-state transitions between uncapped and capped — the simulator's
    /// view of a trip point being crossed (either direction).
    TripCrossings,
    /// cpufreq governor frequency changes (any component, any direction).
    GovernorFreqChanges,
    /// Writes performed against the sysfs control plane by the simulator
    /// core (caps, state mirroring).
    SysfsWrites,
    /// `cap_changed` events (includes cap-level moves while throttled).
    CapChanges,
    /// `migration` events (cluster moves, whatever initiated them).
    Migrations,
    /// `workload_finished` events.
    WorkloadsFinished,
    /// Campaign cells completed.
    CellsCompleted,
    /// Spans dropped because the span buffer hit its cap.
    SpansDropped,
}

impl Counter {
    /// Every counter, in slot order.
    pub const ALL: [Counter; 11] = [
        Counter::Ticks,
        Counter::StageRuns,
        Counter::ThrottleEvents,
        Counter::TripCrossings,
        Counter::GovernorFreqChanges,
        Counter::SysfsWrites,
        Counter::CapChanges,
        Counter::Migrations,
        Counter::WorkloadsFinished,
        Counter::CellsCompleted,
        Counter::SpansDropped,
    ];

    /// Number of counter slots.
    pub const COUNT: usize = Counter::ALL.len();

    /// The counter's slot index.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stable exposition name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::Ticks => "mpt_ticks_total",
            Counter::StageRuns => "mpt_stage_runs_total",
            Counter::ThrottleEvents => "mpt_throttle_events_total",
            Counter::TripCrossings => "mpt_trip_crossings_total",
            Counter::GovernorFreqChanges => "mpt_governor_freq_changes_total",
            Counter::SysfsWrites => "mpt_sysfs_writes_total",
            Counter::CapChanges => "mpt_events_cap_changed_total",
            Counter::Migrations => "mpt_events_migration_total",
            Counter::WorkloadsFinished => "mpt_events_workload_finished_total",
            Counter::CellsCompleted => "mpt_cells_completed_total",
            Counter::SpansDropped => "mpt_spans_dropped_total",
        }
    }

    /// Maps a discrete-event kind key (as produced by the simulator's
    /// event log) to its counter, if one exists. This is the single
    /// source of the event-to-counter semantics shared by the event log's
    /// rendering and the metrics snapshot.
    #[must_use]
    pub fn for_event_kind(key: &str) -> Option<Counter> {
        match key {
            "migration" => Some(Counter::Migrations),
            "cap_changed" => Some(Counter::CapChanges),
            "workload_finished" => Some(Counter::WorkloadsFinished),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
    }

    #[test]
    fn event_kind_mapping() {
        assert_eq!(
            Counter::for_event_kind("migration"),
            Some(Counter::Migrations)
        );
        assert_eq!(Counter::for_event_kind("nope"), None);
    }
}
