//! Pre-registered counters with stable names and ids.
//!
//! Counters are the *deterministic* half of the recorder: every increment
//! corresponds to a simulated event (a throttle action, a migration, a
//! sysfs write), never to wall-clock behaviour, so totals are
//! bit-identical across runs and worker counts. Ids are fixed at compile
//! time — the hot path is one atomic add into a fixed slot, with no
//! lookup and no allocation.

/// A pre-registered counter.
///
/// The discriminant is the counter's slot index; [`Counter::name`] is its
/// stable Prometheus-style name. Both are part of the observability
/// contract (golden-tested), so new counters must be appended, never
/// reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Counter {
    /// Simulator ticks executed.
    Ticks,
    /// Pipeline stage executions (ticks × stages).
    StageRuns,
    /// Thermal-governor throttle actions applied (`SetMaxFreq`, incl.
    /// repeats of the same cap).
    ThrottleEvents,
    /// Cap-state transitions between uncapped and capped — the simulator's
    /// view of a trip point being crossed (either direction).
    TripCrossings,
    /// cpufreq governor frequency changes (any component, any direction).
    GovernorFreqChanges,
    /// Writes performed against the sysfs control plane by the simulator
    /// core (caps, state mirroring).
    SysfsWrites,
    /// `cap_changed` events (includes cap-level moves while throttled).
    CapChanges,
    /// `migration` events (cluster moves, whatever initiated them).
    Migrations,
    /// `workload_finished` events.
    WorkloadsFinished,
    /// Campaign cells completed.
    CellsCompleted,
    /// Spans dropped because the span buffer hit its cap.
    SpansDropped,
    /// `alert` events — alert rules fired by the analyze stage.
    AlertsFired,
    /// Counter-track samples dropped because a track hit its cap.
    TrackSamplesDropped,
    /// Thermal-solver transition-matrix cache hits (a simulator reused a
    /// discretization another cell already built).
    SolverCacheHits,
    /// Thermal-solver transition-matrix cache builds (discretizations
    /// actually factored).
    SolverCacheBuilds,
    /// Forward-Euler substeps the exact-LTI solver made unnecessary
    /// (what the stability bound would have forced, minus the one
    /// mat-vec actually taken).
    SolverSubstepsAvoided,
    /// Static-analysis checks executed by `mpt-lint` (one per analysis
    /// target: a platform model, a config file, a source file).
    LintChecksRun,
    /// Diagnostics emitted by `mpt-lint` (errors and warnings).
    LintDiagnostics,
    /// Wake events popped off the event-driven engine's queue (one per
    /// macro pass that consumed a scheduled wake).
    EventsPopped,
    /// Queued wakes absorbed into an already-running macro pass instead
    /// of waking the engine separately (lands due to the base-dt grid
    /// quantization of wake times).
    WakesCoalesced,
    /// Bisection iterations spent refining trip-crossing wake times on
    /// the analytic thermal trajectory.
    TripBisectionIters,
    /// Fleet device-ticks stepped by the batched solver (devices × ticks
    /// — the unit the fleet throughput benchmarks report per second).
    DeviceTicks,
}

impl Counter {
    /// Every counter, in slot order.
    pub const ALL: [Counter; 22] = [
        Counter::Ticks,
        Counter::StageRuns,
        Counter::ThrottleEvents,
        Counter::TripCrossings,
        Counter::GovernorFreqChanges,
        Counter::SysfsWrites,
        Counter::CapChanges,
        Counter::Migrations,
        Counter::WorkloadsFinished,
        Counter::CellsCompleted,
        Counter::SpansDropped,
        Counter::AlertsFired,
        Counter::TrackSamplesDropped,
        Counter::SolverCacheHits,
        Counter::SolverCacheBuilds,
        Counter::SolverSubstepsAvoided,
        Counter::LintChecksRun,
        Counter::LintDiagnostics,
        Counter::EventsPopped,
        Counter::WakesCoalesced,
        Counter::TripBisectionIters,
        Counter::DeviceTicks,
    ];

    /// Number of counter slots.
    pub const COUNT: usize = Counter::ALL.len();

    /// The counter's slot index.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stable exposition name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::Ticks => "mpt_ticks_total",
            Counter::StageRuns => "mpt_stage_runs_total",
            Counter::ThrottleEvents => "mpt_throttle_events_total",
            Counter::TripCrossings => "mpt_trip_crossings_total",
            Counter::GovernorFreqChanges => "mpt_governor_freq_changes_total",
            Counter::SysfsWrites => "mpt_sysfs_writes_total",
            Counter::CapChanges => "mpt_events_cap_changed_total",
            Counter::Migrations => "mpt_events_migration_total",
            Counter::WorkloadsFinished => "mpt_events_workload_finished_total",
            Counter::CellsCompleted => "mpt_cells_completed_total",
            Counter::SpansDropped => "mpt_spans_dropped_total",
            Counter::AlertsFired => "mpt_alerts_fired_total",
            Counter::TrackSamplesDropped => "mpt_track_samples_dropped_total",
            Counter::SolverCacheHits => "mpt_solver_cache_hits_total",
            Counter::SolverCacheBuilds => "mpt_solver_cache_builds_total",
            Counter::SolverSubstepsAvoided => "mpt_solver_substeps_avoided_total",
            Counter::LintChecksRun => "mpt_lint_checks_total",
            Counter::LintDiagnostics => "mpt_lint_diagnostics_total",
            Counter::EventsPopped => "mpt_engine_events_popped_total",
            Counter::WakesCoalesced => "mpt_engine_wakes_coalesced_total",
            Counter::TripBisectionIters => "mpt_engine_trip_bisection_iters_total",
            Counter::DeviceTicks => "mpt_fleet_device_ticks_total",
        }
    }

    /// One-line description for the Prometheus `# HELP` exposition.
    #[must_use]
    pub fn help(self) -> &'static str {
        match self {
            Counter::Ticks => "Simulator ticks executed.",
            Counter::StageRuns => "Pipeline stage executions (ticks x stages).",
            Counter::ThrottleEvents => {
                "Thermal-governor throttle actions applied, including repeated caps."
            }
            Counter::TripCrossings => {
                "Cap-state transitions between uncapped and capped (trip crossings)."
            }
            Counter::GovernorFreqChanges => "cpufreq governor frequency changes.",
            Counter::SysfsWrites => "Writes against the sysfs control plane.",
            Counter::CapChanges => "cap_changed events, including cap-level moves.",
            Counter::Migrations => "migration events (cluster moves).",
            Counter::WorkloadsFinished => "workload_finished events.",
            Counter::CellsCompleted => "Campaign cells completed.",
            Counter::SpansDropped => "Spans dropped at the span-buffer cap.",
            Counter::AlertsFired => "Alert-rule firings recorded by the analyze stage.",
            Counter::TrackSamplesDropped => "Counter-track samples dropped at the track cap.",
            Counter::SolverCacheHits => "Thermal-solver transition-matrix cache hits.",
            Counter::SolverCacheBuilds => "Thermal-solver transition-matrix cache builds.",
            Counter::SolverSubstepsAvoided => {
                "Forward-Euler substeps avoided by the exact-LTI solver."
            }
            Counter::LintChecksRun => "Static-analysis checks executed by mpt-lint.",
            Counter::LintDiagnostics => "Diagnostics emitted by mpt-lint (errors and warnings).",
            Counter::EventsPopped => "Wake events popped off the event-driven engine's queue.",
            Counter::WakesCoalesced => "Queued wakes absorbed into an already-running macro pass.",
            Counter::TripBisectionIters => {
                "Bisection iterations refining trip-crossing wake times."
            }
            Counter::DeviceTicks => "Fleet device-ticks stepped by the batched solver.",
        }
    }

    /// Looks up the `# HELP` text for a counter by its exposition name,
    /// for exporters that only carry `(name, value)` pairs.
    #[must_use]
    pub fn help_for_name(name: &str) -> Option<&'static str> {
        Counter::ALL
            .iter()
            .find(|c| c.name() == name)
            .map(|c| c.help())
    }

    /// Maps a discrete-event kind key (as produced by the simulator's
    /// event log) to its counter, if one exists. This is the single
    /// source of the event-to-counter semantics shared by the event log's
    /// rendering and the metrics snapshot.
    #[must_use]
    pub fn for_event_kind(key: &str) -> Option<Counter> {
        match key {
            "migration" => Some(Counter::Migrations),
            "cap_changed" => Some(Counter::CapChanges),
            "workload_finished" => Some(Counter::WorkloadsFinished),
            "alert" => Some(Counter::AlertsFired),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
    }

    #[test]
    fn every_counter_has_help() {
        for c in Counter::ALL {
            assert!(!c.help().is_empty());
            assert_eq!(Counter::help_for_name(c.name()), Some(c.help()));
        }
        assert_eq!(Counter::help_for_name("no_such"), None);
    }

    #[test]
    fn event_kind_mapping() {
        assert_eq!(
            Counter::for_event_kind("migration"),
            Some(Counter::Migrations)
        );
        assert_eq!(Counter::for_event_kind("nope"), None);
    }
}
