//! Log-scale latency histograms.
//!
//! Durations land in power-of-two nanosecond buckets (bucket *i* covers
//! `[2^(i-1), 2^i)` ns), so 64 atomic slots span everything from 1 ns to
//! ~584 years with a fixed ~2× relative error on quantile estimates —
//! the classic HdrHistogram-style trade for an allocation-free, lock-free
//! hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets.
pub const BUCKETS: usize = 64;

/// A pre-registered histogram's id: an index into the recorder's fixed
/// histogram table. Obtained from
/// [`Recorder::register_histogram`](crate::Recorder::register_histogram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(pub(crate) usize);

impl HistId {
    /// The histogram's slot index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A concurrent log2-bucketed histogram over nanosecond durations.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

fn bucket_of(ns: u64) -> usize {
    // 0 -> bucket 0; otherwise 1 + floor(log2(ns)), capped at the top.
    if ns == 0 {
        0
    } else {
        ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, nanoseconds.
    #[must_use]
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Largest recorded duration, nanoseconds.
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Mean duration in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns() as f64 / n as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) in nanoseconds: the upper
    /// bound of the bucket holding the `ceil(q*count)`-th sample. Returns
    /// 0 for an empty histogram.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i: 2^i - 1 clamped to i=0 -> 0.
                return if i == 0 {
                    0
                } else {
                    (1u64 << i).saturating_sub(1)
                };
            }
        }
        self.max_ns()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum_ns", &self.sum_ns())
            .field("max_ns", &self.max_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let h = Histogram::new();
        for ns in [100u64, 200, 300, 400, 10_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 11_000);
        assert_eq!(h.max_ns(), 10_000);
        let p50 = h.quantile_ns(0.5);
        // 300 lands in bucket [256, 512); upper bound 511.
        assert!((256..=511).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 >= 10_000, "p99 = {p99}");
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }
}
