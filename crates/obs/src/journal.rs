//! Live event journal: a bounded lock-free ring of sequence-numbered
//! events with a snapshot+delta subscriber protocol.
//!
//! The batch exporters ([`crate::trace`], [`crate::export`]) only speak
//! after a run finishes; the journal is the *live* plane. Emitters (the
//! campaign runner, both stepping engines, the alert engine) push
//! [`JournalEvent`]s into a fixed-capacity ring of atomic word slots;
//! subscribers (the `--progress` renderer, the `--serve-obs` HTTP
//! endpoint, eventually `mpt-serve`) follow along with a cursor:
//!
//! 1. take a [`Snapshot`] — a consistent aggregate view (counters,
//!    histogram summaries, per-cell progress, device-ticks/sec throughput
//!    with an ETA) stamped with the journal cursor at capture time;
//! 2. repeatedly [`Journal::poll`] from that cursor — each poll returns
//!    the events after the cursor plus an explicit `dropped` count for
//!    anything the ring overwrote before the subscriber got to it.
//!
//! # Lock-free ring
//!
//! Each slot is a seqlock over plain `AtomicU64` payload words (no
//! `unsafe`): a writer claims a global sequence number with one
//! `fetch_add`, marks the slot busy for that generation via `fetch_max`
//! (abandoning the write if a newer generation already owns the slot),
//! stores the payload words — generation echo first — and publishes with
//! a `compare_exchange` to the stable state. A reader accepts a slot only
//! if the state word reads *stable for the expected generation* before
//! the payload loads, and both the embedded generation echo and the state
//! word still match afterwards; anything else is reported as `dropped`,
//! never returned torn. Strings (cell labels, alert rules/messages) live
//! in an append-only interner so the ring itself stays plain words.
//!
//! # Determinism
//!
//! Journal *content* is deterministic modulo wall-clock fields: per-cell
//! events (cell started/finished, alerts, stage rollups, queue stats) are
//! driven purely by simulated state, while global sampler events
//! ([`JournalKind::CounterDelta`]) depend on when the sampler ran
//! relative to the workers and are excluded from the deterministic
//! replay. [`normalized_replay`] renders the deterministic subset — with
//! sequence numbers and wall-clock fields zeroed, grouped by cell — to a
//! form that is bit-identical across `--jobs 1` and `--jobs 8`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::Counter;
use crate::recorder::Recorder;
use crate::trace::escape_json;

/// Default ring capacity (events) for a [`Recorder`]'s journal.
pub const DEFAULT_CAPACITY: usize = 1 << 13;

const PAYLOAD_WORDS: usize = 8;
const W_GEN: usize = 0;
const W_KIND: usize = 1;
const W_TS: usize = 2;
const W_SIM: usize = 3;
const W_CELL: usize = 4;
const W_A: usize = 5;
const W_B: usize = 6;
const W_C: usize = 7;
const NONE: u64 = u64::MAX;

/// One ring slot: a seqlock state word plus plain payload words.
struct Slot {
    /// `0` = never written; `2g+1` = busy writing generation `g`;
    /// `2g+2` = stable, holds generation `g`. Strictly monotonic.
    state: AtomicU64,
    words: [AtomicU64; PAYLOAD_WORDS],
}

fn busy(seq: u64) -> u64 {
    2 * seq + 1
}

fn stable(seq: u64) -> u64 {
    2 * seq + 2
}

/// What one journal event reports.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalKind {
    /// A campaign began expanding `cells` cells.
    CampaignStarted {
        /// Total cell count of the campaign.
        cells: u64,
    },
    /// A worker picked up a campaign cell.
    CellStarted {
        /// The cell's axis label (e.g. `trips=70 workloads=game`).
        label: String,
    },
    /// A campaign cell finished simulating.
    CellFinished {
        /// The cell's axis label.
        label: String,
        /// Peak control-sensor temperature the cell reached.
        peak_temp_c: f64,
    },
    /// An alert rule fired inside a run.
    AlertFired {
        /// The rule kind key (`temp_above`, `fps_below`, ...).
        rule: String,
        /// The rendered firing message.
        message: String,
    },
    /// A counter moved since the last sampler pass (batched: one event
    /// per changed counter per pass). **Not deterministic** across worker
    /// counts — the sampler runs on wall-clock-ish boundaries relative to
    /// the workers — so replay reconciles on `total`, not `delta`.
    CounterDelta {
        /// Which counter moved.
        counter: Counter,
        /// Increase since the previous sampler pass.
        delta: u64,
        /// Absolute value at sample time.
        total: u64,
    },
    /// Per-run rollup of the stage pipeline (emitted once per scenario
    /// run; `wall_us` is normalized away in deterministic replay).
    StageRollup {
        /// Engine passes executed (macro steps for the event engine).
        passes: u64,
        /// Stage executions (passes x pipeline stages).
        stage_runs: u64,
        /// Wall-clock duration of the run, microseconds.
        wall_us: u64,
    },
    /// Solver transition-cache totals (emitted at campaign end).
    SolverCacheSummary {
        /// Discretizations reused.
        hits: u64,
        /// Discretizations actually factored.
        builds: u64,
    },
    /// Event-engine queue totals for one run (zeros under fixed-dt).
    QueueStats {
        /// Wake events popped off the queue.
        events_popped: u64,
        /// Queued wakes absorbed into an already-running macro pass.
        wakes_coalesced: u64,
        /// Bisection iterations refining trip-crossing wake times.
        trip_bisection_iters: u64,
    },
    /// Batched fleet replay progress inside one cell, emitted on a
    /// deterministic tick cadence (so replay stays bit-identical across
    /// worker counts).
    FleetProgress {
        /// Devices in the cell's fleet.
        devices: u64,
        /// Replay ticks completed so far.
        ticks_done: u64,
        /// Total replay ticks the cell will run.
        ticks_total: u64,
    },
}

/// One sequence-numbered journal event.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEvent {
    /// Global sequence number (the journal's cursor coordinate).
    pub seq: u64,
    /// Wall-clock microseconds since the recorder epoch.
    pub ts_us: u64,
    /// Simulation-time microseconds, where the event has one.
    pub sim_us: Option<u64>,
    /// The campaign cell the emitting thread was running, if any.
    pub cell: Option<u32>,
    /// What happened.
    pub kind: JournalKind,
}

impl JournalEvent {
    /// Stable key naming the event kind in exports.
    #[must_use]
    pub fn kind_key(&self) -> &'static str {
        match self.kind {
            JournalKind::CampaignStarted { .. } => "campaign_started",
            JournalKind::CellStarted { .. } => "cell_started",
            JournalKind::CellFinished { .. } => "cell_finished",
            JournalKind::AlertFired { .. } => "alert_fired",
            JournalKind::CounterDelta { .. } => "counter_delta",
            JournalKind::StageRollup { .. } => "stage_rollup",
            JournalKind::SolverCacheSummary { .. } => "solver_cache",
            JournalKind::QueueStats { .. } => "queue_stats",
            JournalKind::FleetProgress { .. } => "fleet_progress",
        }
    }

    /// Whether the event's payload is a pure function of simulated state
    /// (bit-identical across worker counts). [`JournalKind::CounterDelta`]
    /// batches depend on sampler timing and are excluded.
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        !matches!(self.kind, JournalKind::CounterDelta { .. })
    }

    /// Renders the event as one JSON object (one NDJSON line, no
    /// trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"seq\":{},\"ts_us\":{}", self.seq, self.ts_us);
        match self.sim_us {
            Some(t) => out.push_str(&format!(",\"sim_us\":{t}")),
            None => out.push_str(",\"sim_us\":null"),
        }
        match self.cell {
            Some(c) => out.push_str(&format!(",\"cell\":{c}")),
            None => out.push_str(",\"cell\":null"),
        }
        out.push_str(&format!(",\"kind\":\"{}\"", self.kind_key()));
        match &self.kind {
            JournalKind::CampaignStarted { cells } => {
                out.push_str(&format!(",\"cells\":{cells}"));
            }
            JournalKind::CellStarted { label } => {
                out.push_str(&format!(",\"label\":\"{}\"", escape_json(label)));
            }
            JournalKind::CellFinished { label, peak_temp_c } => {
                out.push_str(&format!(
                    ",\"label\":\"{}\",\"peak_temp_c\":",
                    escape_json(label)
                ));
                if peak_temp_c.is_finite() {
                    out.push_str(&format!("{peak_temp_c}"));
                } else {
                    out.push_str("null");
                }
            }
            JournalKind::AlertFired { rule, message } => {
                out.push_str(&format!(
                    ",\"rule\":\"{}\",\"message\":\"{}\"",
                    escape_json(rule),
                    escape_json(message)
                ));
            }
            JournalKind::CounterDelta {
                counter,
                delta,
                total,
            } => {
                out.push_str(&format!(
                    ",\"counter\":\"{}\",\"delta\":{delta},\"total\":{total}",
                    counter.name()
                ));
            }
            JournalKind::StageRollup {
                passes,
                stage_runs,
                wall_us,
            } => {
                out.push_str(&format!(
                    ",\"passes\":{passes},\"stage_runs\":{stage_runs},\"wall_us\":{wall_us}"
                ));
            }
            JournalKind::SolverCacheSummary { hits, builds } => {
                out.push_str(&format!(",\"hits\":{hits},\"builds\":{builds}"));
            }
            JournalKind::QueueStats {
                events_popped,
                wakes_coalesced,
                trip_bisection_iters,
            } => {
                out.push_str(&format!(
                    ",\"events_popped\":{events_popped},\"wakes_coalesced\":{wakes_coalesced},\"trip_bisection_iters\":{trip_bisection_iters}"
                ));
            }
            JournalKind::FleetProgress {
                devices,
                ticks_done,
                ticks_total,
            } => {
                out.push_str(&format!(
                    ",\"devices\":{devices},\"ticks_done\":{ticks_done},\"ticks_total\":{ticks_total}"
                ));
            }
        }
        out.push('}');
        out
    }

    /// The event with every wall-clock-dependent field zeroed: `seq` and
    /// `ts_us` cleared, and `wall_us` zeroed for stage rollups.
    #[must_use]
    pub fn normalized(&self) -> JournalEvent {
        let mut ev = self.clone();
        ev.seq = 0;
        ev.ts_us = 0;
        if let JournalKind::StageRollup { wall_us, .. } = &mut ev.kind {
            *wall_us = 0;
        }
        ev
    }
}

/// The result of one [`Journal::poll`]: events after the cursor, how many
/// were lost to ring overwrites, and where to resume.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Events in sequence order, all with `seq >= ` the polled cursor.
    pub events: Vec<JournalEvent>,
    /// Events between the cursor and `next_cursor` the ring overwrote
    /// before this reader observed them (a lapped slow reader).
    pub dropped: u64,
    /// Cursor to pass to the next poll.
    pub next_cursor: u64,
}

/// One cell currently being simulated, for progress rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellInFlight {
    /// Campaign cell index.
    pub cell: u32,
    /// The cell's axis label.
    pub label: String,
}

enum SlotRead {
    Event(JournalEvent),
    NotYet,
    Gone,
}

/// The bounded live event journal. One lives inside every [`Recorder`];
/// a disabled recorder carries a zero-capacity journal whose every
/// operation is a cheap early return.
pub struct Journal {
    enabled: bool,
    epoch: Instant,
    mask: u64,
    head: AtomicU64,
    slots: Vec<Slot>,
    strings: Mutex<Vec<String>>,
    cells_total: AtomicU64,
    cells_done: AtomicU64,
    in_flight: Mutex<BTreeMap<u32, String>>,
    last_sample: Mutex<[u64; Counter::COUNT]>,
}

impl Journal {
    /// A journal with `capacity` ring slots (must be a power of two when
    /// enabled; a disabled journal allocates nothing).
    pub(crate) fn new(enabled: bool, epoch: Instant, capacity: usize) -> Self {
        let capacity = if enabled { capacity } else { 0 };
        assert!(
            !enabled || capacity.is_power_of_two(),
            "journal capacity must be a power of two, got {capacity}"
        );
        Self {
            enabled,
            epoch,
            mask: capacity.wrapping_sub(1) as u64,
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    state: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            strings: Mutex::new(Vec::new()),
            cells_total: AtomicU64::new(0),
            cells_done: AtomicU64::new(0),
            in_flight: Mutex::new(BTreeMap::new()),
            last_sample: Mutex::new([0; Counter::COUNT]),
        }
    }

    /// Whether this journal records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Ring capacity in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The current cursor: the sequence number the *next* event will get.
    /// Polling from here returns only events emitted after this call.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.head.load(SeqCst)
    }

    fn intern(&self, s: &str) -> u64 {
        let mut strings = self.strings.lock().expect("interner never poisoned");
        if let Some(i) = strings.iter().position(|x| x == s) {
            return i as u64;
        }
        strings.push(s.to_owned());
        (strings.len() - 1) as u64
    }

    fn resolve(&self, id: u64) -> String {
        self.strings
            .lock()
            .expect("interner never poisoned")
            .get(usize::try_from(id).unwrap_or(usize::MAX))
            .cloned()
            .unwrap_or_default()
    }

    /// Emits one event, stamped with the current wall clock and the
    /// calling thread's [`cell_scope`]. Returns the event's sequence
    /// number, or `None` on a disabled journal.
    pub fn emit(&self, sim_us: Option<u64>, kind: JournalKind) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        let cell = current_cell();
        self.track_progress(cell, &kind);
        let (code, a, b, c) = self.encode(&kind);
        let ts_us =
            u64::try_from(crate::clock::elapsed(self.epoch).as_micros()).unwrap_or(u64::MAX);
        let seq = self.head.fetch_add(1, SeqCst);
        let slot = &self.slots[(seq & self.mask) as usize];
        // SAFETY-equivalent seqlock invariant (all-atomic, no `unsafe`):
        // a slot's `state` is monotone non-decreasing and odd (`busy`)
        // exactly while its payload words are torn. Claim the slot for
        // this generation; if a newer generation got there first (the
        // ring lapped mid-write), abandon — readers will report the
        // sequence number as dropped.
        if slot.state.fetch_max(busy(seq), SeqCst) > busy(seq) {
            return Some(seq);
        }
        slot.words[W_GEN].store(seq, SeqCst);
        slot.words[W_KIND].store(code, SeqCst);
        slot.words[W_TS].store(ts_us, SeqCst);
        slot.words[W_SIM].store(sim_us.unwrap_or(NONE), SeqCst);
        slot.words[W_CELL].store(cell.map_or(NONE, u64::from), SeqCst);
        slot.words[W_A].store(a, SeqCst);
        slot.words[W_B].store(b, SeqCst);
        slot.words[W_C].store(c, SeqCst);
        // SAFETY-equivalent invariant: publishing `stable(seq)` asserts
        // every payload word above is written; the CAS (not a plain
        // store) keeps `state` monotone — failure means a newer
        // generation overwrote us mid-write and owns the slot now.
        let _ = slot
            .state
            .compare_exchange(busy(seq), stable(seq), SeqCst, SeqCst);
        Some(seq)
    }

    fn track_progress(&self, cell: Option<u32>, kind: &JournalKind) {
        match kind {
            JournalKind::CampaignStarted { cells } => {
                self.cells_total.store(*cells, SeqCst);
            }
            JournalKind::CellStarted { label } => {
                if let Some(c) = cell {
                    self.in_flight
                        .lock()
                        .expect("in-flight map never poisoned")
                        .insert(c, label.clone());
                }
            }
            JournalKind::CellFinished { .. } => {
                self.cells_done.fetch_add(1, SeqCst);
                if let Some(c) = cell {
                    self.in_flight
                        .lock()
                        .expect("in-flight map never poisoned")
                        .remove(&c);
                }
            }
            _ => {}
        }
    }

    fn encode(&self, kind: &JournalKind) -> (u64, u64, u64, u64) {
        match kind {
            JournalKind::CampaignStarted { cells } => (0, *cells, 0, 0),
            JournalKind::CellStarted { label } => (1, self.intern(label), 0, 0),
            JournalKind::CellFinished { label, peak_temp_c } => {
                (2, self.intern(label), peak_temp_c.to_bits(), 0)
            }
            JournalKind::AlertFired { rule, message } => {
                (3, self.intern(rule), self.intern(message), 0)
            }
            JournalKind::CounterDelta {
                counter,
                delta,
                total,
            } => (4, counter.index() as u64, *delta, *total),
            JournalKind::StageRollup {
                passes,
                stage_runs,
                wall_us,
            } => (5, *passes, *stage_runs, *wall_us),
            JournalKind::SolverCacheSummary { hits, builds } => (6, *hits, *builds, 0),
            JournalKind::QueueStats {
                events_popped,
                wakes_coalesced,
                trip_bisection_iters,
            } => (7, *events_popped, *wakes_coalesced, *trip_bisection_iters),
            JournalKind::FleetProgress {
                devices,
                ticks_done,
                ticks_total,
            } => (8, *devices, *ticks_done, *ticks_total),
        }
    }

    fn decode(&self, code: u64, a: u64, b: u64, c: u64) -> Option<JournalKind> {
        Some(match code {
            0 => JournalKind::CampaignStarted { cells: a },
            1 => JournalKind::CellStarted {
                label: self.resolve(a),
            },
            2 => JournalKind::CellFinished {
                label: self.resolve(a),
                peak_temp_c: f64::from_bits(b),
            },
            3 => JournalKind::AlertFired {
                rule: self.resolve(a),
                message: self.resolve(b),
            },
            4 => JournalKind::CounterDelta {
                counter: *Counter::ALL.get(usize::try_from(a).ok()?)?,
                delta: b,
                total: c,
            },
            5 => JournalKind::StageRollup {
                passes: a,
                stage_runs: b,
                wall_us: c,
            },
            6 => JournalKind::SolverCacheSummary { hits: a, builds: b },
            7 => JournalKind::QueueStats {
                events_popped: a,
                wakes_coalesced: b,
                trip_bisection_iters: c,
            },
            8 => JournalKind::FleetProgress {
                devices: a,
                ticks_done: b,
                ticks_total: c,
            },
            _ => return None,
        })
    }

    fn read_slot(&self, seq: u64) -> SlotRead {
        let slot = &self.slots[(seq & self.mask) as usize];
        let s0 = slot.state.load(SeqCst);
        if s0 < stable(seq) {
            return SlotRead::NotYet;
        }
        if s0 > stable(seq) {
            return SlotRead::Gone;
        }
        let words: [u64; PAYLOAD_WORDS] = std::array::from_fn(|i| slot.words[i].load(SeqCst));
        // SAFETY-equivalent seqlock read protocol: the payload is only
        // trusted if `state` still equals `stable(seq)` *after* every
        // word was loaded — any concurrent writer must first bump the
        // state through `busy(newer)`, so an unchanged state proves the
        // words above are an untorn generation-`seq` snapshot.
        if words[W_GEN] != seq || slot.state.load(SeqCst) != stable(seq) {
            return SlotRead::Gone;
        }
        let Some(kind) = self.decode(words[W_KIND], words[W_A], words[W_B], words[W_C]) else {
            return SlotRead::Gone;
        };
        SlotRead::Event(JournalEvent {
            seq,
            ts_us: words[W_TS],
            sim_us: (words[W_SIM] != NONE).then_some(words[W_SIM]),
            cell: (words[W_CELL] != NONE).then(|| u32::try_from(words[W_CELL]).unwrap_or(u32::MAX)),
            kind,
        })
    }

    /// Returns every retained event with `seq >= cursor`, in sequence
    /// order, plus the exact count of events the ring overwrote before
    /// this reader observed them. Events still being written are left for
    /// the next poll (`next_cursor` stops short of them).
    #[must_use]
    pub fn poll(&self, cursor: u64) -> Delta {
        if !self.enabled {
            return Delta {
                events: Vec::new(),
                dropped: 0,
                next_cursor: 0,
            };
        }
        let head = self.head.load(SeqCst);
        let oldest = head.saturating_sub(self.slots.len() as u64);
        let start = cursor.max(oldest);
        let mut dropped = start.saturating_sub(cursor);
        let mut events = Vec::new();
        let mut next_cursor = start;
        for seq in start..head {
            match self.read_slot(seq) {
                SlotRead::Event(ev) => {
                    events.push(ev);
                    next_cursor = seq + 1;
                }
                SlotRead::NotYet => break,
                SlotRead::Gone => {
                    dropped += 1;
                    next_cursor = seq + 1;
                }
            }
        }
        Delta {
            events,
            dropped,
            next_cursor,
        }
    }

    /// Emits one [`JournalKind::CounterDelta`] per counter that moved
    /// since the previous sampler pass. Global (not per-cell) and driven
    /// by *when* it is called, so its events are excluded from
    /// deterministic replay; subscribers reconcile on the carried
    /// `total`.
    pub fn sample_counters(&self, rec: &Recorder) {
        if !self.enabled {
            return;
        }
        let mut last = self.last_sample.lock().expect("sampler never poisoned");
        for &counter in &Counter::ALL {
            let total = rec.counter(counter);
            let delta = total.saturating_sub(last[counter.index()]);
            if delta > 0 {
                last[counter.index()] = total;
                self.emit(
                    None,
                    JournalKind::CounterDelta {
                        counter,
                        delta,
                        total,
                    },
                );
            }
        }
    }

    /// Captures a consistent [`Snapshot`] of aggregate state. The cursor
    /// is read *first*, so an event emitted concurrently is either after
    /// the cursor (the subscriber sees it in its next poll) or already
    /// folded into the aggregates — never silently lost.
    #[must_use]
    pub fn snapshot(&self, rec: &Recorder) -> Snapshot {
        let cursor = self.cursor();
        let elapsed_s = crate::clock::elapsed(self.epoch).as_secs_f64();
        let cells_total = self.cells_total.load(SeqCst);
        let cells_done = self.cells_done.load(SeqCst);
        let in_flight = self
            .in_flight
            .lock()
            .expect("in-flight map never poisoned")
            .iter()
            .map(|(&cell, label)| CellInFlight {
                cell,
                label: label.clone(),
            })
            .collect();
        let ticks_total = rec.counter(Counter::Ticks);
        let ticks_per_sec = if elapsed_s > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            {
                ticks_total as f64 / elapsed_s
            }
        } else {
            0.0
        };
        let device_ticks_total = rec.counter(Counter::DeviceTicks);
        let device_ticks_per_sec = if elapsed_s > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            {
                device_ticks_total as f64 / elapsed_s
            }
        } else {
            0.0
        };
        #[allow(clippy::cast_precision_loss)]
        let eta_s = (cells_done > 0 && cells_total > cells_done)
            .then(|| elapsed_s * (cells_total - cells_done) as f64 / cells_done as f64);
        Snapshot {
            cursor,
            elapsed_s,
            cells_total,
            cells_done,
            in_flight,
            ticks_total,
            ticks_per_sec,
            device_ticks_total,
            device_ticks_per_sec,
            eta_s,
            metrics: rec.snapshot(),
        }
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("enabled", &self.enabled)
            .field("capacity", &self.slots.len())
            .field("cursor", &self.cursor())
            .finish()
    }
}

/// A consistent aggregate view for subscribers joining mid-run: resume
/// polling from [`Snapshot::cursor`] to observe everything after it.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Journal cursor at capture time.
    pub cursor: u64,
    /// Wall-clock seconds since the recorder epoch.
    pub elapsed_s: f64,
    /// Campaign cell count (0 outside a campaign).
    pub cells_total: u64,
    /// Cells finished so far.
    pub cells_done: u64,
    /// Cells currently simulating, with their axis labels.
    pub in_flight: Vec<CellInFlight>,
    /// Simulator ticks executed so far (all cells).
    pub ticks_total: u64,
    /// Simulator ticks per wall-clock second.
    pub ticks_per_sec: f64,
    /// Fleet device-ticks stepped so far (devices × replay ticks, all
    /// cells; 0 outside fleet campaigns).
    pub device_ticks_total: u64,
    /// Fleet device-ticks per wall-clock second.
    pub device_ticks_per_sec: f64,
    /// Estimated seconds to campaign completion, where computable.
    pub eta_s: Option<f64>,
    /// Full counter + histogram snapshot.
    pub metrics: crate::export::MetricsSnapshot,
}

impl Snapshot {
    /// Renders the snapshot as a JSON object (the `/progress` payload).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"cursor\": {},\n  \"elapsed_s\": {:.6},\n  \"progress\": {{\n    \"cells_total\": {},\n    \"cells_done\": {},\n    \"in_flight\": [",
            self.cursor, self.elapsed_s, self.cells_total, self.cells_done
        );
        for (i, c) in self.in_flight.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{ \"cell\": {}, \"label\": \"{}\" }}",
                c.cell,
                escape_json(&c.label)
            ));
        }
        if !self.in_flight.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("],\n    \"eta_s\": ");
        match self.eta_s {
            Some(eta) => out.push_str(&format!("{eta:.3}")),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            "\n  }},\n  \"throughput\": {{\n    \"ticks_total\": {},\n    \"ticks_per_sec\": {:.1},\n    \"device_ticks_total\": {},\n    \"device_ticks_per_sec\": {:.1}\n  }},\n  \"counters\": {{",
            self.ticks_total, self.ticks_per_sec, self.device_ticks_total, self.device_ticks_per_sec
        ));
        for (i, (name, value)) in self.metrics.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {value}", escape_json(name)));
        }
        out.push_str("\n  },\n  \"histograms\": [");
        for (i, h) in self.metrics.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{ \"name\": \"{}\", \"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {} }}",
                escape_json(&h.name),
                h.count,
                h.mean_ns,
                h.p50_ns,
                h.p95_ns,
                h.p99_ns,
                h.max_ns
            ));
        }
        if !self.metrics.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

thread_local! {
    static CELL_SCOPE: std::cell::Cell<Option<u32>> = const { std::cell::Cell::new(None) };
}

/// RAII guard restoring the previous cell scope on drop.
#[derive(Debug)]
pub struct CellScopeGuard {
    prev: Option<u32>,
}

impl Drop for CellScopeGuard {
    fn drop(&mut self) {
        CELL_SCOPE.with(|c| c.set(self.prev));
    }
}

/// Marks the calling thread as running campaign cell `cell` until the
/// returned guard drops; every journal event emitted on this thread in
/// between is stamped with the cell index.
#[must_use]
pub fn cell_scope(cell: u32) -> CellScopeGuard {
    CELL_SCOPE.with(|c| {
        let prev = c.get();
        c.set(Some(cell));
        CellScopeGuard { prev }
    })
}

/// The cell the calling thread is currently scoped to, if any.
#[must_use]
pub fn current_cell() -> Option<u32> {
    CELL_SCOPE.with(std::cell::Cell::get)
}

/// Renders the deterministic subset of `events` to a normalized form
/// that is bit-identical across worker counts: wall-clock-dependent
/// fields zeroed ([`JournalEvent::normalized`]), sampler events dropped,
/// lines grouped by cell (global events first, then cells in index
/// order) with per-cell emission order preserved.
#[must_use]
pub fn normalized_replay(events: &[JournalEvent]) -> String {
    let mut groups: BTreeMap<Option<u32>, Vec<String>> = BTreeMap::new();
    for ev in events.iter().filter(|e| e.is_deterministic()) {
        groups
            .entry(ev.cell)
            .or_default()
            .push(ev.normalized().to_json());
    }
    let mut out = String::new();
    for lines in groups.values() {
        for line in lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_journal(capacity: usize) -> Journal {
        Journal::new(true, crate::clock::now(), capacity)
    }

    #[test]
    fn emit_and_poll_round_trip() {
        let j = test_journal(16);
        j.emit(None, JournalKind::CampaignStarted { cells: 12 });
        j.emit(
            Some(1_500_000),
            JournalKind::AlertFired {
                rule: "temp_above".into(),
                message: "temp 71.2 C".into(),
            },
        );
        let d = j.poll(0);
        assert_eq!(d.dropped, 0);
        assert_eq!(d.next_cursor, 2);
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.events[0].seq, 0);
        assert_eq!(d.events[0].kind, JournalKind::CampaignStarted { cells: 12 });
        assert_eq!(d.events[1].sim_us, Some(1_500_000));
        assert_eq!(
            d.events[1].kind,
            JournalKind::AlertFired {
                rule: "temp_above".into(),
                message: "temp 71.2 C".into(),
            }
        );
    }

    #[test]
    fn ring_lap_reports_exact_dropped_count() {
        let j = test_journal(8);
        for i in 0..11 {
            j.emit(None, JournalKind::CampaignStarted { cells: i });
        }
        let d = j.poll(0);
        assert_eq!(d.dropped, 3, "11 events in an 8-slot ring drop exactly 3");
        assert_eq!(d.events.len(), 8);
        assert_eq!(d.events[0].seq, 3);
        assert_eq!(d.next_cursor, 11);
        // Resuming from next_cursor drops nothing further.
        let d2 = j.poll(d.next_cursor);
        assert_eq!((d2.dropped, d2.events.len()), (0, 0));
    }

    #[test]
    fn cell_scope_stamps_and_restores() {
        let j = test_journal(16);
        assert_eq!(current_cell(), None);
        {
            let _outer = cell_scope(3);
            j.emit(None, JournalKind::CellStarted { label: "a".into() });
            {
                let _inner = cell_scope(4);
                assert_eq!(current_cell(), Some(4));
            }
            assert_eq!(current_cell(), Some(3));
        }
        assert_eq!(current_cell(), None);
        assert_eq!(j.poll(0).events[0].cell, Some(3));
    }

    #[test]
    fn disabled_journal_is_inert() {
        let j = Journal::new(false, crate::clock::now(), DEFAULT_CAPACITY);
        assert_eq!(
            j.emit(None, JournalKind::CampaignStarted { cells: 1 }),
            None
        );
        assert_eq!(j.capacity(), 0);
        let d = j.poll(0);
        assert!(d.events.is_empty());
        assert_eq!(d.dropped, 0);
    }

    #[test]
    fn normalized_replay_groups_by_cell_and_zeroes_wall_fields() {
        let j = test_journal(32);
        j.emit(None, JournalKind::CampaignStarted { cells: 2 });
        {
            let _s = cell_scope(1);
            j.emit(None, JournalKind::CellStarted { label: "b".into() });
        }
        {
            let _s = cell_scope(0);
            j.emit(None, JournalKind::CellStarted { label: "a".into() });
            j.emit(
                None,
                JournalKind::StageRollup {
                    passes: 10,
                    stage_runs: 90,
                    wall_us: 12345,
                },
            );
        }
        j.sample_counters(&Recorder::new()); // no movement: no events
        let replay = normalized_replay(&j.poll(0).events);
        let lines: Vec<&str> = replay.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("campaign_started"), "global first");
        assert!(lines[1].contains("\"cell\":0"), "cell 0 before cell 1");
        assert!(lines[2].contains("\"wall_us\":0"), "wall clock normalized");
        assert!(lines[3].contains("\"cell\":1"));
        assert!(!replay.contains("\"ts_us\":1"), "timestamps zeroed");
    }

    #[test]
    fn concurrent_emitters_never_tear() {
        let j = std::sync::Arc::new(test_journal(64));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let j = std::sync::Arc::clone(&j);
                s.spawn(move || {
                    let _scope = cell_scope(t);
                    for i in 0..500 {
                        j.emit(
                            None,
                            JournalKind::StageRollup {
                                passes: u64::from(t),
                                stage_runs: i,
                                wall_us: 0,
                            },
                        );
                    }
                });
            }
        });
        let d = j.poll(0);
        assert_eq!(d.events.len() as u64 + d.dropped, 2000);
        for ev in &d.events {
            let JournalKind::StageRollup { passes, .. } = ev.kind else {
                panic!("unexpected kind {ev:?}");
            };
            // The payload must agree with the emitting thread's scope —
            // a torn read would mix them.
            assert_eq!(ev.cell, Some(u32::try_from(passes).unwrap()));
        }
    }
}
