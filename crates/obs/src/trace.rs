//! Chrome trace-event export.
//!
//! Emits the [Trace Event Format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! JSON object consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): one complete (`"ph": "X"`) event
//! per finished span, one thread row per recorder lane, and one counter
//! track (`"ph": "C"`) per registered [`CounterTrack`] — the paper's
//! temperature/power/frequency/FPS curves rendered as Perfetto tracks
//! next to the pipeline spans.
//!
//! Spans are timestamped in wall-clock microseconds since the recorder's
//! epoch; counter tracks carry *simulation-time* microseconds and are
//! exported under their own process row (`pid` [`SIM_PID`]) so the two
//! clock domains never share an axis.

use crate::span::SpanRecord;

/// The `pid` of the wall-clock process row (spans).
pub const WALL_PID: u32 = 1;

/// The `pid` of the simulation-time process row (counter tracks).
pub const SIM_PID: u32 = 2;

/// Identifier of a registered counter track, returned by
/// [`Recorder::register_track`](crate::Recorder::register_track).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(pub(crate) usize);

impl TrackId {
    /// The track's slot index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One exported counter track: a named, unit-annotated series of
/// `(simulation-time µs, value)` samples that renders as a counter row in
/// Perfetto (the shape of the paper's Figure 1/3/5 curves).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTrack {
    /// Track name, e.g. `"temp_max_c"`.
    pub name: String,
    /// Unit suffix for display, e.g. `"C"`, `"W"`, `"MHz"`, `"fps"`.
    pub unit: &'static str,
    /// `(simulation time in µs, value)` samples in ascending time order.
    pub samples: Vec<(u64, f64)>,
}

/// Escapes a string for embedding in a JSON string literal: `"`, `\`,
/// the common whitespace escapes, and every remaining control character
/// below 0x20 as `\u00XX` — so scenario-derived names can never produce
/// an unloadable trace.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity; callers
/// filter non-finite samples, this is the belt to that suspender).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

/// Renders spans as a Chrome trace-event JSON object.
///
/// `process_name` labels the single process row (e.g. the scenario or
/// campaign file name). Lanes become thread rows named `lane N`;
/// timestamps are microseconds since the recorder's epoch, as the format
/// requires.
#[must_use]
pub fn chrome_trace_json(spans: &[SpanRecord], process_name: &str) -> String {
    chrome_trace_json_full(spans, &[], process_name)
}

/// [`chrome_trace_json`] plus counter tracks: spans render under the
/// wall-clock process row, each [`CounterTrack`] becomes a `"ph":"C"`
/// counter series under the simulation-time process row.
#[must_use]
pub fn chrome_trace_json_full(
    spans: &[SpanRecord],
    tracks: &[CounterTrack],
    process_name: &str,
) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{WALL_PID},\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape_json(process_name)
    ));
    let mut lanes: Vec<u32> = spans.iter().map(|s| s.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in &lanes {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{WALL_PID},\"tid\":{lane},\
             \"args\":{{\"name\":\"lane {lane}\"}}}}"
        ));
    }
    if tracks.iter().any(|t| !t.samples.is_empty()) {
        out.push_str(&format!(
            ",\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{SIM_PID},\"tid\":0,\
             \"args\":{{\"name\":\"{} [sim time]\"}}}}",
            escape_json(process_name)
        ));
    }
    for s in spans {
        out.push_str(&format!(
            ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{WALL_PID},\"tid\":{}}}",
            escape_json(&s.name),
            escape_json(s.cat),
            s.start_us,
            s.dur_us,
            s.lane
        ));
    }
    for track in tracks {
        let name = if track.unit.is_empty() {
            escape_json(&track.name)
        } else {
            format!("{} [{}]", escape_json(&track.name), escape_json(track.unit))
        };
        for &(ts, value) in &track.samples {
            if !value.is_finite() {
                continue;
            }
            out.push_str(&format!(
                ",\n{{\"name\":\"{name}\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":{ts},\
                 \"pid\":{SIM_PID},\"args\":{{\"value\":{}}}}}",
                json_number(value)
            ));
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn span(name: &'static str, lane: u32, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            name: Cow::Borrowed(name),
            cat: "stage",
            lane,
            start_us,
            dur_us,
        }
    }

    #[test]
    fn trace_is_loadable_shape() {
        let spans = vec![span("power", 0, 10, 5), span("thermal", 1, 15, 3)];
        let json = chrome_trace_json(&spans, "demo.json");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"power\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"name\":\"lane 1\""));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn counter_tracks_render_as_counter_events() {
        let tracks = vec![
            CounterTrack {
                name: "temp_max_c".into(),
                unit: "C",
                samples: vec![(0, 35.0), (100_000, 41.5)],
            },
            CounterTrack {
                name: "fps".into(),
                unit: "fps",
                samples: vec![(100_000, 58.0)],
            },
        ];
        let json = chrome_trace_json_full(&[span("tick", 0, 0, 7)], &tracks, "game.json");
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"temp_max_c [C]\""));
        assert!(json.contains("\"args\":{\"value\":41.5}"));
        assert!(json.contains("\"name\":\"fps [fps]\""));
        // Counter events live under the simulation-time process row.
        assert!(json.contains(&format!("\"pid\":{SIM_PID},\"args\":{{\"value\":58}}")));
        assert!(json.contains("[sim time]"));
        // Spans stay under the wall-clock row.
        assert!(json.contains(&format!(
            "\"ph\":\"X\",\"ts\":0,\"dur\":7,\"pid\":{WALL_PID}"
        )));
    }

    #[test]
    fn empty_tracks_add_no_sim_process_row() {
        let json = chrome_trace_json_full(
            &[],
            &[CounterTrack {
                name: "t".into(),
                unit: "",
                samples: vec![],
            }],
            "x",
        );
        assert!(!json.contains("[sim time]"));
        assert!(!json.contains("\"ph\":\"C\""));
    }

    #[test]
    fn non_finite_samples_are_skipped() {
        let tracks = vec![CounterTrack {
            name: "t".into(),
            unit: "C",
            samples: vec![(0, f64::NAN), (1, f64::INFINITY), (2, 40.0)],
        }];
        let json = chrome_trace_json_full(&[], &tracks, "x");
        assert!(!json.contains("NaN"));
        assert!(!json.contains("inf"));
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 1);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let json = chrome_trace_json(&[], "we \"quote\"");
        assert!(json.contains("we \\\"quote\\\""));
    }

    #[test]
    fn escaping_covers_all_control_characters() {
        assert_eq!(escape_json("a\rb"), "a\\rb");
        assert_eq!(escape_json("a\tb"), "a\\tb");
        assert_eq!(escape_json("a\u{0}b"), "a\\u0000b");
        assert_eq!(escape_json("a\u{1b}b"), "a\\u001bb");
        assert_eq!(escape_json("a\u{7}b"), "a\\u0007b");
        // Every control character < 0x20 maps to an escape sequence; no
        // raw control byte survives into the output.
        for c in (0u32..0x20).filter_map(char::from_u32) {
            let escaped = escape_json(&c.to_string());
            assert!(
                escaped.chars().all(|c| (c as u32) >= 0x20),
                "raw control char survived for {:#x}",
                c as u32
            );
            assert!(escaped.starts_with('\\'), "{:#x} not escaped", c as u32);
        }
        // Printable characters, including non-ASCII, pass through.
        assert_eq!(escape_json("température 35°C"), "température 35°C");
    }
}
