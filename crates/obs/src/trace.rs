//! Chrome trace-event export.
//!
//! Emits the [Trace Event Format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! JSON object consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): one complete (`"ph": "X"`) event
//! per finished span, one thread row per recorder lane.

use crate::span::SpanRecord;

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders spans as a Chrome trace-event JSON object.
///
/// `process_name` labels the single process row (e.g. the scenario or
/// campaign file name). Lanes become thread rows named `lane N`;
/// timestamps are microseconds since the recorder's epoch, as the format
/// requires.
#[must_use]
pub fn chrome_trace_json(spans: &[SpanRecord], process_name: &str) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape_json(process_name)
    ));
    let mut lanes: Vec<u32> = spans.iter().map(|s| s.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in &lanes {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\
             \"args\":{{\"name\":\"lane {lane}\"}}}}"
        ));
    }
    for s in spans {
        out.push_str(&format!(
            ",\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{}}}",
            escape_json(&s.name),
            escape_json(s.cat),
            s.start_us,
            s.dur_us,
            s.lane
        ));
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn span(name: &'static str, lane: u32, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            name: Cow::Borrowed(name),
            cat: "stage",
            lane,
            start_us,
            dur_us,
        }
    }

    #[test]
    fn trace_is_loadable_shape() {
        let spans = vec![span("power", 0, 10, 5), span("thermal", 1, 15, 3)];
        let json = chrome_trace_json(&spans, "demo.json");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"power\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"name\":\"lane 1\""));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let json = chrome_trace_json(&[], "we \"quote\"");
        assert!(json.contains("we \\\"quote\\\""));
    }
}
