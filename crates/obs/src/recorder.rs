//! The recorder: the simulator's flight data recorder.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::export::{HistSnapshot, MetricsSnapshot};
use crate::hist::{HistId, Histogram};
use crate::journal::Journal;
use crate::metrics::Counter;
use crate::span::{current_lane, SpanGuard, SpanRecord};
use crate::trace::{CounterTrack, TrackId};

/// Maximum number of registrable histograms.
pub const MAX_HISTOGRAMS: usize = 32;

/// Maximum retained span records; further spans are dropped (and counted
/// under [`Counter::SpansDropped`]).
pub const SPAN_CAP: usize = 1 << 17;

/// Maximum samples retained per counter track; further samples are
/// dropped (and counted under [`Counter::TrackSamplesDropped`]).
pub const TRACK_SAMPLE_CAP: usize = 1 << 16;

const SPAN_SHARDS: usize = 16;

struct TrackSlot {
    name: String,
    unit: &'static str,
    samples: Vec<(u64, f64)>,
}

/// Collects spans, counters and histograms for one run (or one whole
/// campaign — a single recorder is safely shared across worker threads
/// behind an `Arc`).
///
/// All methods take `&self`; counters and histograms are atomic slots,
/// spans go through a sharded mutex (one shard per lane modulo
/// [`SPAN_SHARDS`], so concurrent workers rarely contend). The disabled
/// recorder from [`Recorder::null`] turns every operation into a cheap
/// early return.
pub struct Recorder {
    enabled: bool,
    epoch: Instant,
    counters: [AtomicU64; Counter::COUNT],
    hists: [Histogram; MAX_HISTOGRAMS],
    hist_names: Mutex<Vec<String>>,
    spans: [Mutex<Vec<SpanRecord>>; SPAN_SHARDS],
    span_count: AtomicUsize,
    tracks: Mutex<Vec<TrackSlot>>,
    journal: Journal,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    fn with_enabled(enabled: bool, journal_capacity: usize) -> Self {
        let epoch = crate::clock::now();
        Self {
            enabled,
            epoch,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| Histogram::new()),
            hist_names: Mutex::new(Vec::new()),
            spans: std::array::from_fn(|_| Mutex::new(Vec::new())),
            span_count: AtomicUsize::new(0),
            tracks: Mutex::new(Vec::new()),
            journal: Journal::new(enabled, epoch, journal_capacity),
        }
    }

    /// An enabled recorder with its epoch set to "now".
    #[must_use]
    pub fn new() -> Self {
        Self::with_enabled(true, crate::journal::DEFAULT_CAPACITY)
    }

    /// An enabled recorder whose journal ring holds `capacity` events
    /// (power of two) — for tests and benchmarks that exercise ring laps.
    #[must_use]
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Self::with_enabled(true, capacity)
    }

    /// The "NullRecorder": a disabled recorder whose every operation is a
    /// no-op behind one branch — for hot loops that must not pay for
    /// observability.
    #[must_use]
    pub fn null() -> Self {
        Self::with_enabled(false, 0)
    }

    /// Whether this recorder records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The live event journal sharing this recorder's epoch. Disabled
    /// (zero-capacity, every call an early return) on a null recorder.
    #[must_use]
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Adds `n` to a counter.
    pub fn add(&self, counter: Counter, n: u64) {
        if self.enabled && n > 0 {
            self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments a counter by one.
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Registers (or looks up) a histogram by name and returns its id.
    /// Registration is idempotent: the same name always yields the same
    /// id on a given recorder, so callers registering a fixed name set in
    /// a fixed order get deterministic ids.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_HISTOGRAMS`] distinct names are
    /// registered.
    pub fn register_histogram(&self, name: &str) -> HistId {
        let mut names = self.hist_names.lock().expect("hist mutex never poisoned");
        if let Some(i) = names.iter().position(|n| n == name) {
            return HistId(i);
        }
        assert!(
            names.len() < MAX_HISTOGRAMS,
            "too many histograms (cap {MAX_HISTOGRAMS})"
        );
        names.push(name.to_owned());
        HistId(names.len() - 1)
    }

    /// The registered histogram names, in id order.
    #[must_use]
    pub fn histogram_names(&self) -> Vec<String> {
        self.hist_names
            .lock()
            .expect("hist mutex never poisoned")
            .clone()
    }

    /// Registers (or looks up) a counter track by name and returns its
    /// id. Like histograms, registration is idempotent: the same name
    /// always yields the same id on a given recorder, so campaign workers
    /// sharing one recorder resolve the same ids.
    pub fn register_track(&self, name: &str, unit: &'static str) -> TrackId {
        let mut tracks = self.tracks.lock().expect("track mutex never poisoned");
        if let Some(i) = tracks.iter().position(|t| t.name == name) {
            return TrackId(i);
        }
        tracks.push(TrackSlot {
            name: name.to_owned(),
            unit,
            samples: Vec::new(),
        });
        TrackId(tracks.len() - 1)
    }

    /// Appends one `(simulation-time µs, value)` sample to a registered
    /// track. Non-finite values are silently skipped (JSON cannot carry
    /// them); samples past [`TRACK_SAMPLE_CAP`] are dropped and counted
    /// under [`Counter::TrackSamplesDropped`].
    pub fn sample_track(&self, id: TrackId, ts_us: u64, value: f64) {
        if !self.enabled || !value.is_finite() {
            return;
        }
        let mut tracks = self.tracks.lock().expect("track mutex never poisoned");
        let Some(slot) = tracks.get_mut(id.index()) else {
            return;
        };
        if slot.samples.len() >= TRACK_SAMPLE_CAP {
            drop(tracks);
            self.incr(Counter::TrackSamplesDropped);
            return;
        }
        slot.samples.push((ts_us, value));
    }

    /// All registered counter tracks with their samples sorted by
    /// timestamp. Intended for export after the run — not a hot-path
    /// call.
    #[must_use]
    pub fn tracks(&self) -> Vec<CounterTrack> {
        self.tracks
            .lock()
            .expect("track mutex never poisoned")
            .iter()
            .map(|t| {
                let mut samples = t.samples.clone();
                samples.sort_by_key(|s| s.0);
                CounterTrack {
                    name: t.name.clone(),
                    unit: t.unit,
                    samples,
                }
            })
            .collect()
    }

    /// Records a duration into a registered histogram.
    pub fn record_duration(&self, id: HistId, d: Duration) {
        if self.enabled {
            self.hists[id.index()].record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Direct access to a registered histogram.
    #[must_use]
    pub fn histogram(&self, id: HistId) -> &Histogram {
        &self.hists[id.index()]
    }

    /// Opens a span; it records itself when the returned guard drops.
    pub fn span(&self, cat: &'static str, name: impl Into<Cow<'static, str>>) -> SpanGuard<'_> {
        self.span_inner(cat, name.into(), None)
    }

    /// Opens a span that additionally records its duration into a
    /// histogram — the usual shape for pipeline stages.
    pub fn span_with_hist(
        &self,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        hist: HistId,
    ) -> SpanGuard<'_> {
        self.span_inner(cat, name.into(), Some(hist))
    }

    fn span_inner(
        &self,
        cat: &'static str,
        name: Cow<'static, str>,
        hist: Option<HistId>,
    ) -> SpanGuard<'_> {
        if self.enabled {
            SpanGuard::new(Some(self), name, cat, hist)
        } else {
            SpanGuard::new(None, name, cat, hist)
        }
    }

    pub(crate) fn micros_since_epoch(&self, at: Instant) -> u64 {
        u64::try_from(at.saturating_duration_since(self.epoch).as_micros()).unwrap_or(u64::MAX)
    }

    pub(crate) fn finish_span(&self, record: SpanRecord) {
        if self.span_count.fetch_add(1, Ordering::Relaxed) >= SPAN_CAP {
            self.span_count.fetch_sub(1, Ordering::Relaxed);
            self.incr(Counter::SpansDropped);
            return;
        }
        let shard = record.lane as usize % SPAN_SHARDS;
        self.spans[shard]
            .lock()
            .expect("span mutex never poisoned")
            .push(record);
    }

    /// All finished spans, ordered by start time (then lane). Intended
    /// for export after the run — not a hot-path call.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut all: Vec<SpanRecord> = Vec::with_capacity(self.span_count.load(Ordering::Relaxed));
        for shard in &self.spans {
            all.extend(
                shard
                    .lock()
                    .expect("span mutex never poisoned")
                    .iter()
                    .cloned(),
            );
        }
        all.sort_by_key(|s| (s.start_us, s.lane));
        all
    }

    /// A point-in-time metrics snapshot: every counter (in id order) and
    /// every registered histogram with its quantile summary.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name().to_owned(), self.counter(c)))
            .collect();
        let histograms = self
            .histogram_names()
            .into_iter()
            .enumerate()
            .map(|(i, name)| {
                let h = &self.hists[i];
                HistSnapshot {
                    name,
                    count: h.count(),
                    sum_ns: h.sum_ns(),
                    mean_ns: h.mean_ns(),
                    p50_ns: h.quantile_ns(0.50),
                    p95_ns: h.quantile_ns(0.95),
                    p99_ns: h.quantile_ns(0.99),
                    max_ns: h.max_ns(),
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// The lane the calling thread records spans on (the `tid` of the
    /// exported trace).
    #[must_use]
    pub fn lane(&self) -> u32 {
        current_lane()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .field("spans", &self.span_count.load(Ordering::Relaxed))
            .field("histograms", &self.histogram_names().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let rec = Recorder::new();
        rec.incr(Counter::Ticks);
        rec.add(Counter::Ticks, 9);
        assert_eq!(rec.counter(Counter::Ticks), 10);
    }

    #[test]
    fn null_recorder_records_nothing() {
        let rec = Recorder::null();
        rec.incr(Counter::Ticks);
        let h = rec.register_histogram("x");
        rec.record_duration(h, Duration::from_millis(1));
        {
            let _s = rec.span("cat", "name");
        }
        let t = rec.register_track("temp_max_c", "C");
        rec.sample_track(t, 0, 40.0);
        assert_eq!(rec.counter(Counter::Ticks), 0);
        assert_eq!(rec.histogram(h).count(), 0);
        assert!(rec.spans().is_empty());
        assert!(rec.tracks()[0].samples.is_empty());
        assert!(!rec.is_enabled());
    }

    #[test]
    fn track_registration_is_idempotent_and_samples_sort() {
        let rec = Recorder::new();
        let a = rec.register_track("temp_max_c", "C");
        let b = rec.register_track("power_total_w", "W");
        assert_eq!(rec.register_track("temp_max_c", "C"), a);
        assert_ne!(a, b);
        rec.sample_track(a, 200, 41.0);
        rec.sample_track(a, 100, 40.0);
        rec.sample_track(a, 300, f64::NAN); // skipped
        let tracks = rec.tracks();
        assert_eq!(tracks.len(), 2);
        assert_eq!(tracks[0].name, "temp_max_c");
        assert_eq!(tracks[0].unit, "C");
        assert_eq!(tracks[0].samples, vec![(100, 40.0), (200, 41.0)]);
        assert!(tracks[1].samples.is_empty());
    }

    #[test]
    fn track_cap_drops_and_counts() {
        let rec = Recorder::new();
        let t = rec.register_track("x", "");
        for i in 0..(TRACK_SAMPLE_CAP as u64 + 5) {
            rec.sample_track(t, i, 1.0);
        }
        assert_eq!(rec.tracks()[0].samples.len(), TRACK_SAMPLE_CAP);
        assert_eq!(rec.counter(Counter::TrackSamplesDropped), 5);
    }

    #[test]
    fn histogram_registration_is_idempotent() {
        let rec = Recorder::new();
        let a = rec.register_histogram("stage:power");
        let b = rec.register_histogram("stage:thermal");
        let a2 = rec.register_histogram("stage:power");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(rec.histogram_names(), vec!["stage:power", "stage:thermal"]);
    }

    #[test]
    fn spans_record_and_sort() {
        let rec = Recorder::new();
        {
            let _outer = rec.span("tick", "tick");
            let _inner = rec.span("stage", "power");
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].start_us <= spans[1].start_us);
        assert!(spans.iter().any(|s| s.name == "tick"));
        assert!(spans.iter().any(|s| s.name == "power"));
    }

    #[test]
    fn snapshot_lists_every_counter_in_order() {
        let rec = Recorder::new();
        rec.incr(Counter::Migrations);
        let snap = rec.snapshot();
        assert_eq!(snap.counters.len(), Counter::COUNT);
        assert_eq!(snap.counter("mpt_events_migration_total"), Some(1));
        assert_eq!(snap.counter("mpt_ticks_total"), Some(0));
        assert_eq!(snap.counter("no_such"), None);
    }

    #[test]
    fn shared_across_threads() {
        let rec = std::sync::Arc::new(Recorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = std::sync::Arc::clone(&rec);
                s.spawn(move || {
                    for _ in 0..1000 {
                        rec.incr(Counter::StageRuns);
                    }
                    let _span = rec.span("cell", "worker");
                });
            }
        });
        assert_eq!(rec.counter(Counter::StageRuns), 4000);
        assert_eq!(rec.spans().len(), 4);
    }
}
