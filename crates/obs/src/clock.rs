//! The workspace's single wall-clock authority.
//!
//! Simulation results must be a pure function of the scenario spec and
//! seed — wall-clock time may only influence *observability* (span
//! timestamps, campaign wall-time accounting, progress reporting). To
//! keep that auditable, every wall-clock read in the workspace goes
//! through this module, and the `mpt-lint` determinism scanner (MPT201)
//! flags `Instant::now()` / `.elapsed()` anywhere else. This file is the
//! only entry in the scanner's allowlist (`crates/lint/determinism.allow`).

use std::time::{Duration, Instant};

/// Reads the monotonic wall clock. The one sanctioned `Instant::now()`
/// call site in the workspace.
#[must_use]
pub fn now() -> Instant {
    #[allow(clippy::disallowed_methods)]
    Instant::now()
}

/// Wall-clock time elapsed since `start`. Equivalent to
/// `start.elapsed()`, routed through this module so the read shows up in
/// the determinism audit.
#[must_use]
pub fn elapsed(start: Instant) -> Duration {
    now().saturating_duration_since(start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let start = now();
        let a = elapsed(start);
        let b = elapsed(start);
        assert!(b >= a);
    }
}
