//! Allocation discipline of `linalg::expm`.
//!
//! The scaling-and-squaring build allocates exactly four matrices up
//! front (scaled input, result, Taylor term, scratch) and ping-pongs
//! between them: the Taylor loop and the squaring loop themselves must
//! not allocate, however many squarings the input norm demands. A
//! counting global allocator pins that — this file holds only this test
//! so no sibling test thread can perturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use mpt_thermal::linalg::{expm, Mat};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to the `System` allocator — same layout
// contract, no bookkeeping that could alias or retain the pointers; the
// counter is a relaxed atomic with no effect on allocation itself. This
// file is the workspace's only sanctioned `unsafe` outside the lint
// allowlist (see ci.yml's unsafe gate).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; we
        // forward the same layout unchanged.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by the matching `alloc` above with
        // the same layout, as `GlobalAlloc::dealloc` requires.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed while computing `expm(a)` (result dropped after
/// counting, so its own buffer is included in the count).
fn allocs_during_expm(a: &Mat) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    let result = expm(a);
    let after = ALLOCS.load(Ordering::Relaxed);
    drop(result);
    after - before
}

/// A stable (diagonally dominant, negative-diagonal) test matrix whose
/// infinity norm is scaled to `norm`.
fn stable_matrix(n: usize, norm: f64) -> Mat {
    let mut m = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = if i == j { -1.0 } else { 0.25 / n as f64 };
        }
    }
    let row_norm: f64 = m.row(0).iter().map(|v| v.abs()).sum();
    let scale = norm / row_norm;
    for i in 0..n {
        for v in m.row_mut(i) {
            *v *= scale;
        }
    }
    m
}

#[test]
fn expm_allocates_no_intermediates() {
    // Zero squarings (norm ≤ 1/4) versus many (norm 64 ⇒ 8 squarings):
    // the allocation count must not depend on the squaring count, and
    // must be exactly the four up-front buffers.
    let calm = stable_matrix(6, 0.2);
    let hot = stable_matrix(6, 64.0);
    let calm_allocs = allocs_during_expm(&calm);
    let hot_allocs = allocs_during_expm(&hot);
    assert_eq!(
        calm_allocs, hot_allocs,
        "squaring loop must reuse its ping-pong buffers, not reallocate"
    );
    assert_eq!(calm_allocs, 4, "scaled + result + term + scratch only");
}
