//! Batch-vs-scalar equivalence for the fleet stepping kernel.
//!
//! The contract under test: `step_batch` over N jittered devices
//! produces, for every device, exactly the bits that N independent
//! scalar `step` calls produce on per-device `ThermalLti`s differing
//! only in ambient. No tolerance — `to_bits` equality — on both builtin
//! platforms, across multiple ticks and random per-device spreads in
//! ambient, initial temperature and injected power (including exact
//! zeros, which exercise the `Bd` scatter's per-device skip).

use mpt_soc::{platforms, ThermalLti};
use mpt_thermal::{ExactLti, FleetState, ThermalSolver, TransitionCache};
use mpt_units::{Kelvin, Seconds, Watts};
use proptest::prelude::*;
use std::sync::Arc;

fn lti_for(platform: usize) -> ThermalLti {
    let p = if platform == 0 {
        platforms::exynos_5422()
    } else {
        platforms::snapdragon_810()
    };
    p.thermal_spec().lti().unwrap()
}

/// One scalar reference device: its own solver, its own ambient-shifted
/// LTI, stepped through the same dt sequence.
struct ScalarDevice {
    lti: ThermalLti,
    solver: ExactLti,
    temps: Vec<Kelvin>,
}

#[allow(clippy::needless_range_loop)]
fn run_equivalence(
    platform: usize,
    devices: usize,
    ticks: usize,
    dt: f64,
    ambient_offsets: &[f64],
    initial_offsets: &[f64],
    power_scales: &[f64],
) {
    let lti = lti_for(platform);
    let n = lti.len();
    let cache = Arc::new(TransitionCache::new());

    let mut fleet = FleetState::new(n, devices, lti.ambient, lti.ambient);
    let mut scalars: Vec<ScalarDevice> = (0..devices)
        .map(|d| {
            let mut lti_d = lti.clone();
            lti_d.ambient = Kelvin::new(lti.ambient.value() + ambient_offsets[d]);
            fleet.set_ambient(d, lti_d.ambient);
            let mut temps = Vec::with_capacity(n);
            for node in 0..n {
                let t = Kelvin::new(lti.ambient.value() + initial_offsets[d] + 1.5 * node as f64);
                temps.push(t);
                fleet.set_temp(node, d, t);
            }
            ScalarDevice {
                lti: lti_d,
                solver: ExactLti::with_cache(Arc::clone(&cache)),
                temps,
            }
        })
        .collect();

    let mut batch_solver = ExactLti::with_cache(Arc::clone(&cache));
    let mut powers = vec![Watts::ZERO; n];
    for tick in 0..ticks {
        // Per-device B-side inputs: node 1 always powered (scaled per
        // device), node 0 powered on alternate ticks, everything else
        // exactly zero so the scatter's skip path is exercised.
        for (d, dev) in scalars.iter_mut().enumerate() {
            for node in 0..n {
                let pv = match node {
                    1 => 1.75 * power_scales[d],
                    0 if tick % 2 == 0 => 0.6 * power_scales[d],
                    _ => 0.0,
                };
                powers[node] = Watts::new(pv);
                fleet.set_power(node, d, Watts::new(pv));
            }
            dev.solver
                .step(&dev.lti, &mut dev.temps, Seconds::new(dt), &powers)
                .unwrap();
        }
        batch_solver
            .step_batch(&lti, &mut fleet, Seconds::new(dt))
            .unwrap();
        for (d, dev) in scalars.iter().enumerate() {
            for node in 0..n {
                assert_eq!(
                    fleet.temp(node, d).value().to_bits(),
                    dev.temps[node].value().to_bits(),
                    "tick {tick}, device {d}, node {node}: batch {} vs scalar {}",
                    fleet.temp(node, d).value(),
                    dev.temps[node].value(),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_matches_scalar_bit_for_bit(
        platform in 0_usize..2,
        devices in 1_usize..20,
        dt_idx in 0_usize..3,
        seed in proptest::collection::vec((-12.0_f64..12.0, 0.0_f64..40.0, 0.0_f64..2.5), 20),
    ) {
        let dt = [0.1, 0.25, 1.0][dt_idx];
        let ambient_offsets: Vec<f64> = seed.iter().map(|s| s.0).collect();
        let initial_offsets: Vec<f64> = seed.iter().map(|s| s.1).collect();
        let power_scales: Vec<f64> = seed.iter().map(|s| s.2).collect();
        run_equivalence(
            platform,
            devices,
            6,
            dt,
            &ambient_offsets,
            &initial_offsets,
            &power_scales,
        );
    }
}

/// Block-boundary coverage: a fleet larger than the kernel's device
/// block (256) must still match scalar devices on both sides of every
/// block edge. Deterministic (no proptest) so it always runs the big N.
#[test]
fn batch_matches_scalar_across_block_boundary() {
    let devices = 300;
    let ambient_offsets: Vec<f64> = (0..devices).map(|d| (d as f64 % 21.0) - 10.0).collect();
    let initial_offsets: Vec<f64> = (0..devices).map(|d| d as f64 % 35.0).collect();
    let power_scales: Vec<f64> = (0..devices).map(|d| (d as f64 % 7.0) * 0.3).collect();
    run_equivalence(
        0,
        devices,
        3,
        0.25,
        &ambient_offsets,
        &initial_offsets,
        &power_scales,
    );
}

/// The acceptance pin: an N=1 batch is bit-identical to the scalar
/// `exact_lti` path over a long trajectory — the scalar solver is
/// literally the batch kernel's N=1 special case.
#[test]
fn n1_batch_is_the_scalar_path() {
    for platform in 0..2 {
        let lti = lti_for(platform);
        let n = lti.len();
        let cache = Arc::new(TransitionCache::new());
        let mut scalar = ExactLti::with_cache(Arc::clone(&cache));
        let mut batch = ExactLti::with_cache(Arc::clone(&cache));
        let mut temps = vec![lti.ambient; n];
        let mut fleet = FleetState::new(n, 1, lti.ambient, lti.ambient);
        let mut powers = vec![Watts::ZERO; n];
        let dt = Seconds::from_millis(100.0);
        for tick in 0..1000 {
            for (node, power) in powers.iter_mut().enumerate() {
                let pv = if node == tick % n {
                    2.0 + 0.001 * tick as f64
                } else {
                    0.0
                };
                *power = Watts::new(pv);
                fleet.set_power(node, 0, Watts::new(pv));
            }
            scalar.step(&lti, &mut temps, dt, &powers).unwrap();
            batch.step_batch(&lti, &mut fleet, dt).unwrap();
            for (node, temp) in temps.iter().enumerate() {
                assert_eq!(
                    fleet.temp(node, 0).value().to_bits(),
                    temp.value().to_bits(),
                    "tick {tick}, node {node}"
                );
            }
        }
    }
}

/// A solver that delegates scalar steps to `ExactLti` but keeps the
/// trait's *default* `step_batch` (the per-device loop) — so the default
/// implementation itself gets covered against the multi-RHS override.
#[derive(Debug)]
struct NoBatchKernel(ExactLti);

impl ThermalSolver for NoBatchKernel {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn step(
        &mut self,
        lti: &ThermalLti,
        temperatures: &mut [Kelvin],
        dt: Seconds,
        powers: &[Watts],
    ) -> mpt_thermal::Result<mpt_thermal::StepStats> {
        self.0.step(lti, temperatures, dt, powers)
    }

    fn box_clone(&self) -> Box<dyn ThermalSolver> {
        unimplemented!("test-only solver is never cloned")
    }
}

/// The generic per-device fallback (used by solvers without a batch
/// kernel) agrees bit-for-bit with the exact-LTI override — same
/// semantics, two implementations.
#[test]
fn default_fallback_matches_exact_override() {
    let lti = lti_for(0);
    let n = lti.len();
    let devices = 5;
    let cache = Arc::new(TransitionCache::new());
    let mut kernel = ExactLti::with_cache(Arc::clone(&cache));
    let mut fallback = NoBatchKernel(ExactLti::with_cache(Arc::clone(&cache)));
    let mut fleet_a = FleetState::new(n, devices, lti.ambient, lti.ambient);
    for d in 0..devices {
        fleet_a.set_ambient(d, Kelvin::new(lti.ambient.value() + d as f64));
        fleet_a.set_power(1, d, Watts::new(0.5 * d as f64));
    }
    let mut fleet_b = fleet_a.clone();
    for _ in 0..4 {
        kernel
            .step_batch(&lti, &mut fleet_a, Seconds::new(0.5))
            .unwrap();
        fallback
            .step_batch(&lti, &mut fleet_b, Seconds::new(0.5))
            .unwrap();
    }
    assert_eq!(fleet_a, fleet_b);
}
