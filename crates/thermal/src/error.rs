//! Error type for thermal modelling.

use std::fmt;

/// Errors returned by thermal-model construction and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// The underlying platform thermal spec was invalid.
    InvalidSpec {
        /// Description from the spec validator.
        reason: String,
    },
    /// A power vector had the wrong length for the network.
    PowerLengthMismatch {
        /// Expected node count.
        expected: usize,
        /// Provided vector length.
        actual: usize,
    },
    /// The steady-state linear system was singular (an isolated node).
    SingularNetwork,
    /// A lumped-model parameter was invalid.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A node name was not found in the network.
    UnknownNode {
        /// The requested name.
        name: String,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidSpec { reason } => write!(f, "invalid thermal spec: {reason}"),
            Self::PowerLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "power vector has {actual} entries, network has {expected} nodes"
                )
            }
            Self::SingularNetwork => write!(f, "thermal network is singular"),
            Self::InvalidParameter { name, value } => {
                write!(f, "lumped parameter {name} has invalid value {value}")
            }
            Self::UnknownNode { name } => write!(f, "unknown thermal node {name:?}"),
        }
    }
}

impl std::error::Error for ThermalError {}

impl From<mpt_soc::SocError> for ThermalError {
    fn from(err: mpt_soc::SocError) -> Self {
        ThermalError::InvalidSpec {
            reason: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThermalError>();
    }

    #[test]
    fn displays_are_informative() {
        let e = ThermalError::PowerLengthMismatch {
            expected: 5,
            actual: 3,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
    }
}
