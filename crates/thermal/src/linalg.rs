//! Minimal dense linear algebra for small thermal networks.
//!
//! Thermal networks in this workspace have a handful of nodes, so a plain
//! Gaussian elimination with partial pivoting is both sufficient and
//! dependency-free.

/// Solves `A·x = b` in place for a small dense system.
///
/// Returns `None` if the matrix is (numerically) singular.
#[allow(clippy::needless_range_loop)] // indexed form mirrors the math
pub(crate) fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|row| row.len() == n));
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-14 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in (row + 1)..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_2x2() {
        // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_solution_satisfies_system(
            seed in proptest::collection::vec(-5.0_f64..5.0, 9),
            b in proptest::collection::vec(-5.0_f64..5.0, 3),
        ) {
            // Build a diagonally dominant (hence nonsingular) matrix.
            let mut a = vec![vec![0.0; 3]; 3];
            for i in 0..3 {
                let mut row_sum = 0.0;
                for j in 0..3 {
                    if i != j {
                        a[i][j] = seed[i * 3 + j];
                        row_sum += a[i][j].abs();
                    }
                }
                a[i][i] = row_sum + 1.0;
            }
            let x = solve(a.clone(), b.clone()).unwrap();
            for i in 0..3 {
                let lhs: f64 = (0..3).map(|j| a[i][j] * x[j]).sum();
                prop_assert!((lhs - b[i]).abs() < 1e-8);
            }
        }
    }
}
