//! Minimal dense linear algebra for small thermal networks.
//!
//! Thermal networks in this workspace have a handful of nodes, so a plain
//! Gaussian elimination with partial pivoting is both sufficient and
//! dependency-free. Public so model-validation tooling (`mpt-lint`'s
//! Hurwitz check) reuses the exact arithmetic the solver runs on.
//!
//! All routines operate on [`Mat`], a flat row-major matrix in one
//! contiguous allocation: no per-row `Vec` headers, no pointer chasing in
//! the inner loops, and the exact layout the batched fleet kernel streams
//! through. The arithmetic (loop order, pivot choice, zero-skips) is
//! unchanged from the historical `Vec<Vec<f64>>` implementation, so every
//! result is bit-identical to what the goldens pinned before the layout
//! change.

use std::ops::{Index, IndexMut};

/// A dense row-major matrix in one contiguous allocation.
///
/// `data[r * cols + c]` holds element `(r, c)`. Rows are contiguous, so
/// `row(i)` is a plain subslice and the mat-vec / mat-mat inner loops
/// stream linearly through memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// The `rows × cols` zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Copies a nested row-major `Vec<Vec<f64>>` (the layout platform
    /// specs still use) into contiguous storage. Every row must have the
    /// same length.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        debug_assert!(rows.iter().all(|r| r.len() == n_cols));
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            data.extend_from_slice(row);
        }
        Self {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Wraps an existing flat row-major buffer. `data.len()` must equal
    /// `rows * cols`.
    #[must_use]
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a contiguous slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable contiguous slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole matrix as one flat row-major slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning its flat row-major buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Swaps rows `a` and `b` element-wise (no allocation).
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let cols = self.cols;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * cols);
        head[lo * cols..(lo + 1) * cols].swap_with_slice(&mut tail[..cols]);
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Solves `A·x = b` in place for a small dense system.
///
/// Returns `None` if the matrix is (numerically) singular.
#[allow(clippy::needless_range_loop)] // indexed form mirrors the math
pub fn solve(mut a: Mat, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.rows() == n && a.cols() == n);
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[(i, col)]
                .abs()
                .partial_cmp(&a[(j, col)].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[(pivot, col)].abs() < 1e-14 {
            return None;
        }
        a.swap_rows(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[(row, col)] / a[(col, col)];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[(row, k)] -= factor * a[(col, k)];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in (row + 1)..n {
            acc -= a[(row, col)] * x[col];
        }
        x[row] = acc / a[(row, row)];
    }
    Some(x)
}

/// Solves `A·X = B` for a matrix right-hand side (column-by-column
/// semantics, implemented as one elimination over all columns).
///
/// Returns `None` if the matrix is (numerically) singular.
#[allow(clippy::needless_range_loop)] // indexed form mirrors the math
pub fn solve_multi(mut a: Mat, mut b: Mat) -> Option<Mat> {
    let n = a.rows();
    debug_assert!(b.rows() == n && a.cols() == n);
    let width = b.cols();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[(i, col)]
                .abs()
                .partial_cmp(&a[(j, col)].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[(pivot, col)].abs() < 1e-14 {
            return None;
        }
        a.swap_rows(col, pivot);
        b.swap_rows(col, pivot);
        for row in (col + 1)..n {
            let factor = a[(row, col)] / a[(col, col)];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[(row, k)] -= factor * a[(col, k)];
            }
            for k in 0..width {
                b[(row, k)] -= factor * b[(col, k)];
            }
        }
    }
    let mut x = Mat::zeros(n, width);
    for row in (0..n).rev() {
        for k in 0..width {
            let mut acc = b[(row, k)];
            for col in (row + 1)..n {
                acc -= a[(row, col)] * x[(col, k)];
            }
            x[(row, k)] = acc / a[(row, row)];
        }
    }
    Some(x)
}

/// The `n×n` identity matrix.
#[must_use]
pub fn identity(n: usize) -> Mat {
    Mat::identity(n)
}

/// Dense matrix product `A·B` into a fresh matrix.
#[must_use]
pub fn mat_mul(a: &Mat, b: &Mat) -> Mat {
    let mut out = Mat::zeros(a.rows(), b.cols());
    mat_mul_into(a, b, &mut out);
    out
}

/// Dense matrix product `A·B` written into `out` (which is zeroed first).
///
/// `out` must already have shape `a.rows() × b.cols()`; no allocation
/// happens here, which is what lets `expm`'s squaring loop ping-pong
/// between two fixed buffers.
#[allow(clippy::needless_range_loop)] // indexed form mirrors the math
pub fn mat_mul_into(a: &Mat, b: &Mat, out: &mut Mat) {
    let (m, inner, p) = (a.rows(), a.cols(), b.cols());
    debug_assert!(b.rows() == inner && out.rows() == m && out.cols() == p);
    out.data.fill(0.0);
    for i in 0..m {
        for k in 0..inner {
            let aik = a[(i, k)];
            if aik == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            let out_row = out.row_mut(i);
            for j in 0..p {
                out_row[j] += aik * b_row[j];
            }
        }
    }
}

/// The matrix exponential `exp(A)` by scaling-and-squaring.
///
/// `A` is scaled down by `2^s` until its infinity norm is at most 1/4,
/// the exponential of the scaled matrix is taken as a Taylor series
/// (which converges rapidly at that norm), and the result is squared `s`
/// times. Thermal-network state matrices are tiny (a handful of nodes)
/// and well-conditioned — all eigenvalues are real and negative — so
/// this classic scheme is accurate to near machine precision here.
///
/// Allocation discipline: the routine allocates exactly four matrices up
/// front (the scaled input, the result, the running Taylor term, and one
/// scratch buffer) and then ping-pongs between them — the Taylor loop and
/// the squaring loop perform no further allocation however many terms or
/// squarings the norm demands. The solver bench notes assert this.
#[allow(clippy::needless_range_loop)] // indexed form mirrors the math
#[must_use]
pub fn expm(a: &Mat) -> Mat {
    let n = a.rows();
    let norm = (0..n)
        .map(|i| a.row(i).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0, f64::max);
    let squarings = if norm > 0.25 {
        (norm / 0.25).log2().ceil().max(0.0) as u32
    } else {
        0
    };
    let scale = (0.5_f64).powi(squarings as i32);
    let mut scaled = a.clone();
    for v in &mut scaled.data {
        *v *= scale;
    }
    // Taylor series of the scaled matrix: converges in ~a dozen terms at
    // ‖M‖ ≤ 1/4.
    let mut result = Mat::identity(n);
    let mut term = Mat::identity(n);
    let mut scratch = Mat::zeros(n, n);
    for k in 1..=30 {
        mat_mul_into(&term, &scaled, &mut scratch);
        std::mem::swap(&mut term, &mut scratch);
        let inv_k = 1.0 / f64::from(k);
        let mut term_norm = 0.0_f64;
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                term[(i, j)] *= inv_k;
                result[(i, j)] += term[(i, j)];
                row_sum += term[(i, j)].abs();
            }
            term_norm = term_norm.max(row_sum);
        }
        if term_norm < 1e-18 {
            break;
        }
    }
    // Repeated squaring reuses the Taylor loop's scratch buffer as the
    // other half of a ping-pong pair: swap instead of reallocating.
    for _ in 0..squarings {
        mat_mul_into(&result, &result, &mut scratch);
        std::mem::swap(&mut result, &mut scratch);
    }
    result
}

/// Eigenvalues of a symmetric matrix by cyclic Jacobi rotations, sorted
/// ascending.
///
/// The caller must pass a symmetric matrix (the routine reads both
/// triangles and rotates them together; asymmetry gives meaningless
/// results — check symmetry first). Convergence is quadratic once
/// off-diagonal mass is small; thermal networks are tiny, so the fixed
/// sweep cap is never a binding limit in practice.
///
/// This powers the Hurwitz check on thermal state matrices: for a
/// symmetric conductance matrix `G_full` and capacitance vector `C`, the
/// state matrix `A = −C⁻¹·G_full` is similar to `−S` with
/// `S_ij = G_full_ij / √(C_i·C_j)` symmetric, so `A` is Hurwitz iff every
/// eigenvalue of `S` is strictly positive.
#[allow(clippy::needless_range_loop)] // indexed form mirrors the math
#[must_use]
pub fn symmetric_eigenvalues(a: &Mat) -> Vec<f64> {
    let n = a.rows();
    let mut m = a.clone();
    for _sweep in 0..100 {
        let off: f64 = (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| m[(i, j)] * m[(i, j)])
            .sum();
        if off < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if m[(p, q)].abs() < 1e-300 {
                    continue;
                }
                // Classic Jacobi rotation annihilating m[p][q].
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * m[(p, q)]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
            }
        }
    }
    let mut eigs: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    eigs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    eigs
}

// ---------------------------------------------------------------------------
// Interval arithmetic (the abstract domain of the MPT6xx verifier)
// ---------------------------------------------------------------------------

/// Relative outward-rounding inflation applied after every interval dot
/// product: `(n + 2)·ε` over-approximates the worst-case accumulated
/// relative error of an `n`-term fused multiply-add chain, so the widened
/// interval is guaranteed to contain the exactly-rounded result the
/// concrete solver computes.
fn dot_slack(terms: usize) -> f64 {
    (terms as f64 + 2.0) * f64::EPSILON
}

/// Widens `[lo, hi]` outward by the rounding slack of a `terms`-long
/// accumulation, guaranteeing the result brackets the exact value.
fn outward(lo: f64, hi: f64, terms: usize) -> (f64, f64) {
    let s = dot_slack(terms);
    let pad_lo = lo.abs() * s + f64::MIN_POSITIVE;
    let pad_hi = hi.abs() * s + f64::MIN_POSITIVE;
    (lo - pad_lo, hi + pad_hi)
}

/// One interval dot product `a · [x_lo, x_hi]` with sign-split coefficient
/// handling: a non-negative coefficient maps `[lo, hi]` to
/// `[a·lo, a·hi]`, a negative one swaps the endpoints. The result is
/// widened outward by the accumulated rounding slack, so it soundly
/// brackets every real dot product `a · x` with `x_lo ≤ x ≤ x_hi`.
#[must_use]
pub fn interval_dot(a: &[f64], x_lo: &[f64], x_hi: &[f64]) -> (f64, f64) {
    debug_assert_eq!(a.len(), x_lo.len());
    debug_assert_eq!(a.len(), x_hi.len());
    let mut lo = 0.0;
    let mut hi = 0.0;
    for (k, &c) in a.iter().enumerate() {
        if c >= 0.0 {
            lo += c * x_lo[k];
            hi += c * x_hi[k];
        } else {
            lo += c * x_hi[k];
            hi += c * x_lo[k];
        }
    }
    outward(lo, hi, a.len())
}

/// Interval mat-vec `M · [x_lo, x_hi]` over a flat row-major matrix,
/// writing outward-rounded per-row bounds into `out_lo`/`out_hi`.
///
/// This is the abstract transformer of the MPT6xx verifier: applied to the
/// exact discretization `Ad = exp(A·dt)` it propagates a guaranteed
/// per-node temperature envelope one tick forward.
pub fn interval_mat_vec(
    m: &[f64],
    n: usize,
    x_lo: &[f64],
    x_hi: &[f64],
    out_lo: &mut [f64],
    out_hi: &mut [f64],
) {
    debug_assert_eq!(m.len(), n * n);
    for i in 0..n {
        let (lo, hi) = interval_dot(&m[i * n..(i + 1) * n], x_lo, x_hi);
        out_lo[i] = lo;
        out_hi[i] = hi;
    }
}

/// Interval product of two scalar intervals (used to scale fleet power
/// envelopes by the `leakage_scale · workload_mix` jitter interval).
#[must_use]
pub fn interval_mul(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    let products = [a.0 * b.0, a.0 * b.1, a.1 * b.0, a.1 * b.1];
    let lo = products.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = products.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    outward(lo, hi, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(rows: &[&[f64]]) -> Mat {
        Mat::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn solves_identity() {
        let a = mat(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = solve(a, vec![3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_2x2() {
        // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
        let a = mat(&[&[2.0, 1.0], &[1.0, -1.0]]);
        let x = solve(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = mat(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = mat(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(a, vec![7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn mat_swap_rows_is_elementwise() {
        let mut m = mat(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn mat_from_flat_round_trips() {
        let m = Mat::from_flat(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.clone().into_vec(), m.as_slice());
    }

    #[test]
    fn mat_mul_into_handles_rectangular_shapes() {
        // (2×3)·(3×2) = 2×2, checked against hand arithmetic.
        let a = mat(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = mat(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let p = mat_mul(&a, &b);
        assert_eq!(p.rows(), 2);
        assert_eq!(p.cols(), 2);
        assert_eq!(p.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let z = Mat::zeros(3, 3);
        assert_eq!(expm(&z), identity(3));
    }

    #[test]
    fn expm_matches_scalar_exponential_on_diagonal() {
        let a = mat(&[&[-0.5, 0.0], &[0.0, -3.0]]);
        let e = expm(&a);
        assert!((e[(0, 0)] - (-0.5_f64).exp()).abs() < 1e-12);
        assert!((e[(1, 1)] - (-3.0_f64).exp()).abs() < 1e-12);
        assert!(e[(0, 1)].abs() < 1e-15 && e[(1, 0)].abs() < 1e-15);
    }

    #[test]
    fn expm_satisfies_semigroup_property() {
        // exp(A) · exp(A) == exp(2A) for a non-diagonal stable matrix.
        let a = mat(&[&[-2.0, 1.5], &[0.7, -1.2]]);
        let two_a = mat(&[&[-4.0, 3.0], &[1.4, -2.4]]);
        let e1 = expm(&a);
        let e2 = expm(&two_a);
        let prod = mat_mul(&e1, &e1);
        for i in 0..2 {
            for j in 0..2 {
                assert!((prod[(i, j)] - e2[(i, j)]).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_multi_matches_columnwise_solve() {
        let a = mat(&[&[2.0, 1.0], &[1.0, -1.0]]);
        let b = mat(&[&[5.0, 1.0], &[1.0, 2.0]]);
        let x = solve_multi(a.clone(), b.clone()).unwrap();
        for col in 0..2 {
            let rhs: Vec<f64> = (0..2).map(|row| b[(row, col)]).collect();
            let xc = solve(a.clone(), rhs).unwrap();
            for row in 0..2 {
                assert!((x[(row, col)] - xc[row]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn symmetric_eigenvalues_of_diagonal_matrix() {
        let a = mat(&[&[3.0, 0.0], &[0.0, -1.0]]);
        let eigs = symmetric_eigenvalues(&a);
        assert!((eigs[0] - (-1.0)).abs() < 1e-12);
        assert!((eigs[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_eigenvalues_of_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = mat(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eigs = symmetric_eigenvalues(&a);
        assert!((eigs[0] - 1.0).abs() < 1e-12);
        assert!((eigs[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_eigenvalues_preserve_trace_and_detect_indefiniteness() {
        // Laplacian-like matrix plus a negative diagonal entry: trace is
        // invariant under the rotations, and the smallest eigenvalue is
        // bounded above by the smallest diagonal entry.
        let a = mat(&[&[-0.5, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let eigs = symmetric_eigenvalues(&a);
        let trace: f64 = eigs.iter().sum();
        assert!((trace - 6.5).abs() < 1e-10);
        assert!(eigs[0] < -0.5 + 1e-12, "min eigenvalue {:?}", eigs);
    }

    #[test]
    fn solve_multi_detects_singular() {
        let a = mat(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(solve_multi(a, Mat::from_flat(2, 1, vec![1.0, 2.0])).is_none());
    }

    proptest! {
        #[test]
        fn prop_solution_satisfies_system(
            seed in proptest::collection::vec(-5.0_f64..5.0, 9),
            b in proptest::collection::vec(-5.0_f64..5.0, 3),
        ) {
            // Build a diagonally dominant (hence nonsingular) matrix.
            let mut a = Mat::zeros(3, 3);
            for i in 0..3 {
                let mut row_sum = 0.0;
                for j in 0..3 {
                    if i != j {
                        a[(i, j)] = seed[i * 3 + j];
                        row_sum += a[(i, j)].abs();
                    }
                }
                a[(i, i)] = row_sum + 1.0;
            }
            let x = solve(a.clone(), b.clone()).unwrap();
            for i in 0..3 {
                let lhs: f64 = (0..3).map(|j| a[(i, j)] * x[j]).sum();
                prop_assert!((lhs - b[i]).abs() < 1e-8);
            }
        }

        #[test]
        fn prop_interval_dot_brackets_every_realization(
            coeffs in proptest::collection::vec(-3.0_f64..3.0, 4),
            lows in proptest::collection::vec(-10.0_f64..10.0, 4),
            widths in proptest::collection::vec(0.0_f64..5.0, 4),
            picks in proptest::collection::vec(0.0_f64..1.0, 4),
        ) {
            let x_lo: Vec<f64> = lows.clone();
            let x_hi: Vec<f64> = lows.iter().zip(&widths).map(|(l, w)| l + w).collect();
            let (lo, hi) = interval_dot(&coeffs, &x_lo, &x_hi);
            prop_assert!(lo <= hi);
            // Any concrete point inside the box lands inside the bounds.
            let x: Vec<f64> = x_lo
                .iter()
                .zip(&x_hi)
                .zip(&picks)
                .map(|((&l, &h), &t)| l + t * (h - l))
                .collect();
            let exact: f64 = coeffs.iter().zip(&x).map(|(c, v)| c * v).sum();
            prop_assert!(lo <= exact && exact <= hi, "{lo} !<= {exact} !<= {hi}");
        }

        #[test]
        fn prop_interval_mul_brackets_every_realization(
            a_lo in -4.0_f64..4.0, a_w in 0.0_f64..3.0,
            b_lo in -4.0_f64..4.0, b_w in 0.0_f64..3.0,
            ta in 0.0_f64..1.0, tb in 0.0_f64..1.0,
        ) {
            let a = (a_lo, a_lo + a_w);
            let b = (b_lo, b_lo + b_w);
            let (lo, hi) = interval_mul(a, b);
            let x = a.0 + ta * (a.1 - a.0);
            let y = b.0 + tb * (b.1 - b.0);
            prop_assert!(lo <= x * y && x * y <= hi);
        }
    }

    #[test]
    fn interval_mat_vec_is_exact_on_points_modulo_slack() {
        // A degenerate (point) interval propagates to the concrete mat-vec
        // result, widened only by the outward rounding slack.
        let m = [0.5, -0.25, 0.1, 0.9];
        let x = [2.0, -3.0];
        let mut lo = [0.0; 2];
        let mut hi = [0.0; 2];
        interval_mat_vec(&m, 2, &x, &x, &mut lo, &mut hi);
        let exact = [0.5 * 2.0 - 0.25 * -3.0, 0.1 * 2.0 + 0.9 * -3.0];
        for i in 0..2 {
            assert!(lo[i] <= exact[i] && exact[i] <= hi[i]);
            assert!(hi[i] - lo[i] < 1e-12, "slack stays tiny: {}", hi[i] - lo[i]);
        }
    }

    #[test]
    fn interval_dot_swaps_endpoints_for_negative_coefficients() {
        let (lo, hi) = interval_dot(&[-2.0], &[1.0], &[3.0]);
        assert!(lo <= -6.0 && -6.0 <= hi);
        assert!(lo <= -2.0 && -2.0 <= hi);
        assert!(lo < -6.0 + 1e-9 && hi > -2.0 - 1e-9);
    }
}
