#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Thermal dynamics and power–temperature stability analysis.
//!
//! Two layers:
//!
//! 1. [`RcNetwork`] — a multi-node RC thermal network built from a
//!    platform's [`ThermalSpec`](mpt_soc::ThermalSpec). The simulator
//!    injects per-node power (dynamic + leakage + static) every tick and
//!    the network integrates the heat equation. This is what produces the
//!    "measured" temperatures in all experiments.
//!
//! 2. [`LumpedModel`] — the paper's analytical core (Section IV-A,
//!    following Bhat et al., TECS 2017). A lumped model
//!    `τ·dT/dt = T_a − T + R·(P_dyn + α·V·T²·e^(−β/T))`
//!    is transformed through the **auxiliary temperature** `θ = β/T`
//!    (inversely proportional to the temperature in Kelvin, exactly as the
//!    paper describes) into `τ·dθ/dt = F(θ)` with
//!
//!    ```text
//!    F(θ) = θ − c·θ² − d·e^(−θ),   c = (T_a + R·P_dyn)/β,   d = R·α·V·β
//!    ```
//!
//!    `F` is strictly concave (`F'' = −2c − d·e^(−θ) < 0`), negative at
//!    both ends, so it has zero, one or two roots — the geometry of the
//!    paper's Figure 7. The **larger root** (lower temperature) is the
//!    attracting stable fixed point; the roots merge at the **critical
//!    power**, beyond which the system has no fixed point and runs away.
//!
//! Integration itself is pluggable: [`RcNetwork`] delegates stepping to a
//! [`ThermalSolver`] — [`ExactLti`] (the default) discretizes the network
//! once per `(dynamics, dt)` as `T[k+1] = Ad·T[k] + Bd·P[k]` with
//! `Ad = exp(A·dt)` and advances each tick with one cached mat-vec, while
//! [`ForwardEuler`] keeps the historical sub-stepping integrator as the
//! bit-exact reference. Discretizations are shared through a
//! [`TransitionCache`] so campaign sweeps factor each network exactly
//! once.
//!
//! The same discretization also steps whole device *fleets*: a
//! [`FleetState`] holds node-major per-device temperature/power planes
//! and [`ThermalSolver::step_batch`] advances all of them in one
//! cache-blocked multi-RHS pass against the shared `(Ad, Bd)` — each
//! device bit-identical to its own scalar run, with per-device spread
//! (ambient, leakage, workload phase) entering only on the input side.
//!
//! The [`reduce`](RcNetwork::reduce) method connects the layers: it
//! collapses the network to the lumped parameters seen from the hottest
//! node under the current power distribution, which is how the
//! application-aware governor in `mpt-core` derives its predictions from
//! live sensor data.
//!
//! # Examples
//!
//! ```
//! use mpt_thermal::{LumpedModel, Stability};
//! use mpt_units::Watts;
//!
//! let model = LumpedModel::odroid_xu3();
//! // The paper's Figure 7: two fixed points at 2 W...
//! assert!(matches!(model.stability(Watts::new(2.0)), Stability::Stable { .. }));
//! // ...and thermal runaway at 8 W.
//! assert!(matches!(model.stability(Watts::new(8.0)), Stability::Runaway));
//! ```

mod error;
mod fleet;
pub mod linalg;
mod lumped;
mod network;
mod solver;

pub use error::ThermalError;
pub use fleet::FleetState;
pub use lumped::{FixedPoints, LumpedModel, Stability};
pub use network::RcNetwork;
pub use solver::{
    Discretization, ExactLti, ForwardEuler, SolverKind, StepStats, ThermalSolver, TransitionCache,
};

/// Result alias for thermal operations.
pub type Result<T> = std::result::Result<T, ThermalError>;
