//! Multi-node RC thermal network.
#![allow(clippy::needless_range_loop)] // indexed loops mirror the matrix math

use std::sync::Arc;

use mpt_units::{Celsius, Kelvin, Seconds, Watts};

use mpt_soc::{ThermalLti, ThermalSpec};

use crate::solver::{SolverKind, StepStats, ThermalSolver, TransitionCache};
use crate::{linalg, LumpedModel, Result, ThermalError};

/// A simulatable RC thermal network.
///
/// Built from a platform [`ThermalSpec`]; holds the current node
/// temperatures and integrates the heat equation
///
/// ```text
/// C_i · dT_i/dt = P_i − Σ_j G_ij (T_i − T_j) − G_a,i (T_i − T_amb)
/// ```
///
/// Integration is delegated to a pluggable
/// [`ThermalSolver`](crate::ThermalSolver): by default the exact LTI
/// discretization ([`SolverKind::ExactLti`]), with the historical
/// forward-Euler sub-stepping available as [`SolverKind::ForwardEuler`].
/// Power is injected per node each step; the caller is responsible for
/// including leakage in the injected power (the simulation loop computes
/// leakage from the previous step's temperatures, closing the
/// power–temperature feedback loop with one tick of latency).
///
/// The network's LTI state-space form is assembled exactly once (by
/// [`ThermalSpec::lti`]) and exposed via [`lti`](RcNetwork::lti) — the
/// steady-state, time-constant and lumped-model analyses below all
/// consume the same matrices the solver integrates.
///
/// # Examples
///
/// ```
/// use mpt_soc::platforms;
/// use mpt_thermal::RcNetwork;
/// use mpt_units::{Seconds, Watts};
///
/// let mut net = RcNetwork::from_spec(platforms::exynos_5422().thermal_spec())?;
/// let big = net.node_index("big").unwrap();
/// let mut powers = vec![Watts::ZERO; net.len()];
/// powers[big] = Watts::new(3.0);
/// for _ in 0..1000 {
///     net.step(Seconds::new(0.1), &powers)?;
/// }
/// assert!(net.temperature(big) > net.ambient());
/// # Ok::<(), mpt_thermal::ThermalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RcNetwork {
    names: Vec<String>,
    lti: ThermalLti,
    temperatures: Vec<Kelvin>,
    solver: Box<dyn ThermalSolver>,
}

impl RcNetwork {
    /// Builds a network from a platform spec, with all nodes initially at
    /// ambient temperature and the default solver
    /// ([`SolverKind::ExactLti`] with a private transition cache).
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidSpec`] if the spec fails validation.
    pub fn from_spec(spec: &ThermalSpec) -> Result<Self> {
        Self::with_solver(spec, SolverKind::default(), None)
    }

    /// Builds a network with an explicit solver, optionally drawing
    /// exact-LTI discretizations from a shared [`TransitionCache`] (the
    /// campaign runner passes one cache to every cell so a sweep factors
    /// each `(platform, dt)` exactly once).
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidSpec`] if the spec fails validation.
    pub fn with_solver(
        spec: &ThermalSpec,
        kind: SolverKind,
        cache: Option<Arc<TransitionCache>>,
    ) -> Result<Self> {
        let lti = spec.lti()?;
        let ambient = lti.ambient;
        let n = lti.len();
        Ok(Self {
            names: spec.nodes.iter().map(|n| n.name.clone()).collect(),
            lti,
            temperatures: vec![ambient; n],
            solver: kind.build(cache),
        })
    }

    /// The network's LTI state-space form — the single source of the
    /// `(A, B)` matrices for both integration and stability analysis.
    #[must_use]
    pub fn lti(&self) -> &ThermalLti {
        &self.lti
    }

    /// The stable name of the configured solver.
    #[must_use]
    pub fn solver_name(&self) -> &'static str {
        self.solver.name()
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the network has no nodes (never true for a constructed
    /// network; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Node names, in index order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of a named node.
    #[must_use]
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The ambient temperature.
    #[must_use]
    pub fn ambient(&self) -> Kelvin {
        self.lti.ambient
    }

    /// Current temperature of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn temperature(&self, i: usize) -> Kelvin {
        self.temperatures[i]
    }

    /// All current node temperatures.
    #[must_use]
    pub fn temperatures(&self) -> &[Kelvin] {
        &self.temperatures
    }

    /// The hottest node and its temperature.
    #[must_use]
    pub fn hottest(&self) -> (usize, Kelvin) {
        let mut best = (0, self.temperatures[0]);
        for (i, &t) in self.temperatures.iter().enumerate() {
            if t > best.1 {
                best = (i, t);
            }
        }
        best
    }

    /// Overrides all node temperatures (e.g. to start an experiment from a
    /// pre-warmed state).
    ///
    /// # Errors
    ///
    /// [`ThermalError::PowerLengthMismatch`] if the slice length differs
    /// from the node count.
    pub fn set_temperatures(&mut self, temps: &[Kelvin]) -> Result<()> {
        if temps.len() != self.len() {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.len(),
                actual: temps.len(),
            });
        }
        self.temperatures.copy_from_slice(temps);
        Ok(())
    }

    /// Sets every node to the same temperature.
    pub fn set_uniform_temperature(&mut self, t: Kelvin) {
        self.temperatures.iter_mut().for_each(|x| *x = t);
    }

    /// Advances the network by `dt` with per-node injected power, using
    /// the configured solver. Any `dt > 0` is safe: the exact solver is
    /// unconditionally stable and the Euler solver sub-steps to stay
    /// within its stability bound.
    ///
    /// Returns the step's [`StepStats`] (substeps, cache traffic) for
    /// observability counters.
    ///
    /// # Errors
    ///
    /// [`ThermalError::PowerLengthMismatch`] if `powers` has the wrong
    /// length; [`ThermalError::SingularNetwork`] if a discretization
    /// cannot be factored.
    pub fn step(&mut self, dt: Seconds, powers: &[Watts]) -> Result<StepStats> {
        if powers.len() != self.len() {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.len(),
                actual: powers.len(),
            });
        }
        if dt.value() <= 0.0 {
            return Ok(StepStats::default());
        }
        self.solver
            .step(&self.lti, &mut self.temperatures, dt, powers)
    }

    /// Evaluates the trajectory `x(t) = Ad(dt)·x0 + ∫Bd·u` at `dt` ahead
    /// of the current state *without* advancing the network — the probe
    /// the event-driven engine bisects on to predict trip-point
    /// crossings. Uses the configured solver (and so the shared
    /// [`TransitionCache`](crate::TransitionCache) for exact-LTI, keyed
    /// by the probed `dt`); only the solver's internal memo mutates,
    /// which is why `&mut self` is required.
    ///
    /// # Errors
    ///
    /// Same conditions as [`step`](Self::step).
    pub fn peek(&mut self, dt: Seconds, powers: &[Watts]) -> Result<Vec<Kelvin>> {
        if powers.len() != self.len() {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.len(),
                actual: powers.len(),
            });
        }
        let mut temps = self.temperatures.clone();
        if dt.value() > 0.0 {
            self.solver.step(&self.lti, &mut temps, dt, powers)?;
        }
        Ok(temps)
    }

    /// The steady-state temperatures for a fixed power injection (linear
    /// solve; leakage feedback is *not* iterated here — use the lumped
    /// analysis for that).
    ///
    /// # Errors
    ///
    /// [`ThermalError::PowerLengthMismatch`] or
    /// [`ThermalError::SingularNetwork`].
    pub fn steady_state(&self, powers: &[Watts]) -> Result<Vec<Kelvin>> {
        if powers.len() != self.len() {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.len(),
                actual: powers.len(),
            });
        }
        // Solve G·T = P + G_a·T_amb against the LTI form's assembled
        // conductance matrix — no inline re-derivation.
        let n = self.len();
        let b: Vec<f64> = (0..n)
            .map(|i| powers[i].value() + self.lti.ambient_conductance[i] * self.lti.ambient.value())
            .collect();
        let t = linalg::solve(linalg::Mat::from_rows(&self.lti.g_full), b)
            .ok_or(ThermalError::SingularNetwork)?;
        Ok(t.into_iter().map(Kelvin::new).collect())
    }

    /// The steady-state thermal gain `dT_i/dP_j` in K/W: how much node `i`
    /// heats per watt injected at node `j`.
    ///
    /// # Errors
    ///
    /// [`ThermalError::SingularNetwork`].
    pub fn gain(&self, node: usize, injected_at: usize) -> Result<f64> {
        let mut powers = vec![Watts::ZERO; self.len()];
        powers[injected_at] = Watts::new(1.0);
        let with = self.steady_state(&powers)?;
        let without = self.steady_state(&vec![Watts::ZERO; self.len()])?;
        Ok(with[node].value() - without[node].value())
    }

    /// The slowest natural time constant of the network, in seconds:
    /// `1/λ_min` of `C⁻¹G`, computed by power iteration on `G⁻¹C`. This
    /// is the mode that dominates long package/board temperature ramps.
    ///
    /// # Errors
    ///
    /// [`ThermalError::SingularNetwork`].
    pub fn dominant_time_constant(&self) -> Result<Seconds> {
        let n = self.len();
        // Power iteration on G⁻¹C (the LTI form's assembled conductance
        // matrix): dominant eigenvalue = slowest τ.
        let g = linalg::Mat::from_rows(&self.lti.g_full);
        let mut x = vec![1.0; n];
        let mut tau = 0.0;
        for _ in 0..200 {
            let cx: Vec<f64> = (0..n).map(|i| self.lti.heat_capacity[i] * x[i]).collect();
            let y = linalg::solve(g.clone(), cx).ok_or(ThermalError::SingularNetwork)?;
            let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm < 1e-300 {
                return Err(ThermalError::SingularNetwork);
            }
            tau = norm;
            for i in 0..n {
                x[i] = y[i] / norm;
            }
        }
        Ok(Seconds::new(tau))
    }

    /// Reduces the network to a [`LumpedModel`] as seen from the hottest
    /// node under the given power distribution.
    ///
    /// The lumped thermal resistance is the power-weighted steady-state
    /// gain from each injection node to the hot node; `leak_gain` and
    /// `beta` come from the caller (summed over components at their
    /// current voltages); `tau` is the network's dominant time constant.
    ///
    /// # Errors
    ///
    /// [`ThermalError::SingularNetwork`], a power-length mismatch, or
    /// invalid derived parameters.
    pub fn reduce(
        &self,
        powers: &[Watts],
        hot_node: usize,
        leak_gain: f64,
        beta: f64,
    ) -> Result<LumpedModel> {
        if powers.len() != self.len() {
            return Err(ThermalError::PowerLengthMismatch {
                expected: self.len(),
                actual: powers.len(),
            });
        }
        let total: f64 = powers.iter().map(|p| p.value()).sum();
        let mut r_eq = 0.0;
        if total > 1e-9 {
            for (j, p) in powers.iter().enumerate() {
                if p.value() > 0.0 {
                    r_eq += self.gain(hot_node, j)? * (p.value() / total);
                }
            }
        } else {
            // No power flowing: use the self-gain of the hot node as a
            // conservative default.
            r_eq = self.gain(hot_node, hot_node)?;
        }
        let tau = self.dominant_time_constant()?;
        LumpedModel::new(self.lti.ambient, r_eq, beta, leak_gain, tau)
    }

    /// Convenience: current temperature of a named node.
    ///
    /// # Errors
    ///
    /// [`ThermalError::UnknownNode`].
    pub fn temperature_of(&self, name: &str) -> Result<Kelvin> {
        self.node_index(name)
            .map(|i| self.temperatures[i])
            .ok_or_else(|| ThermalError::UnknownNode {
                name: name.to_owned(),
            })
    }

    /// Current temperature of a named node in Celsius.
    ///
    /// # Errors
    ///
    /// [`ThermalError::UnknownNode`].
    pub fn celsius_of(&self, name: &str) -> Result<Celsius> {
        self.temperature_of(name).map(Kelvin::to_celsius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpt_soc::platforms;
    use proptest::prelude::*;

    fn odroid_network() -> RcNetwork {
        RcNetwork::from_spec(platforms::exynos_5422().thermal_spec()).unwrap()
    }

    fn odroid_euler() -> RcNetwork {
        RcNetwork::with_solver(
            platforms::exynos_5422().thermal_spec(),
            SolverKind::ForwardEuler,
            None,
        )
        .unwrap()
    }

    /// Verbatim copy of the pre-solver-layer `RcNetwork::step` loop — the
    /// golden reference that `"solver": "forward_euler"` must reproduce
    /// bit-for-bit.
    fn prerefactor_euler_step(net: &RcNetwork, temps: &mut [Kelvin], dt: f64, powers: &[Watts]) {
        let substeps = (dt / net.lti.euler_max_step).ceil().max(1.0) as usize;
        let h = dt / substeps as f64;
        let n = temps.len();
        for _ in 0..substeps {
            let mut deriv = vec![0.0; n];
            for i in 0..n {
                let ti = temps[i].value();
                let mut flow = powers[i].value();
                for j in 0..n {
                    let g = net.lti.conductance[i][j];
                    if g > 0.0 {
                        flow -= g * (ti - temps[j].value());
                    }
                }
                flow -= net.lti.ambient_conductance[i] * (ti - net.lti.ambient.value());
                deriv[i] = flow / net.lti.heat_capacity[i];
            }
            for i in 0..n {
                temps[i] = Kelvin::new(temps[i].value() + h * deriv[i]);
            }
        }
    }

    #[test]
    fn default_solver_is_exact_lti() {
        assert_eq!(odroid_network().solver_name(), "exact_lti");
        assert_eq!(odroid_euler().solver_name(), "forward_euler");
    }

    #[test]
    fn forward_euler_reproduces_prerefactor_trajectory_exactly() {
        // The refactor's compatibility contract: the ForwardEuler solver
        // is the pre-solver-layer integrator, bit for bit, including
        // through a varying-power trajectory with mixed step sizes.
        let mut net = odroid_euler();
        let mut reference = net.temperatures().to_vec();
        let mut powers = vec![Watts::ZERO; net.len()];
        for k in 0..500 {
            powers[1] = Watts::new(2.0 + f64::from(k % 7) * 0.3);
            powers[2] = Watts::new(f64::from(k % 3) * 0.8);
            let dt = [0.01, 0.1, 1.0, 7.3][k as usize % 4];
            prerefactor_euler_step(&net, &mut reference, dt, &powers);
            let stats = net.step(Seconds::new(dt), &powers).unwrap();
            assert!(stats.substeps >= 1 && !stats.cache_hit && !stats.cache_build);
            assert_eq!(net.temperatures(), &reference[..], "step {k}");
        }
    }

    #[test]
    fn exact_and_euler_agree_on_long_odroid_run() {
        let mut exact = odroid_network();
        let mut euler = odroid_euler();
        let big = exact.node_index("big").unwrap();
        let mut powers = vec![Watts::ZERO; exact.len()];
        powers[big] = Watts::new(2.5);
        for _ in 0..600 {
            exact.step(Seconds::from_millis(100.0), &powers).unwrap();
        }
        for _ in 0..60_000 {
            euler.step(Seconds::from_millis(1.0), &powers).unwrap();
        }
        for i in 0..exact.len() {
            let gap = (exact.temperature(i).value() - euler.temperature(i).value()).abs();
            assert!(gap < 0.1, "node {i}: gap {gap} K");
        }
    }

    #[test]
    fn exact_solver_reports_cache_traffic_once() {
        let mut net = odroid_network();
        let powers = vec![Watts::ZERO; net.len()];
        let first = net.step(Seconds::from_millis(100.0), &powers).unwrap();
        assert!(first.cache_build && !first.cache_hit);
        let second = net.step(Seconds::from_millis(100.0), &powers).unwrap();
        assert!(!second.cache_build && !second.cache_hit);
        assert_eq!(second.substeps, 1);
    }

    #[test]
    fn networks_share_a_transition_cache() {
        let platform = platforms::exynos_5422();
        let spec = platform.thermal_spec();
        let cache = std::sync::Arc::new(TransitionCache::new());
        let powers = vec![Watts::ZERO; spec.nodes.len()];
        for expect_build in [true, false, false] {
            let mut net =
                RcNetwork::with_solver(spec, SolverKind::ExactLti, Some(Arc::clone(&cache)))
                    .unwrap();
            let stats = net.step(Seconds::from_millis(100.0), &powers).unwrap();
            assert_eq!(stats.cache_build, expect_build);
            assert_eq!(stats.cache_hit, !expect_build);
        }
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn zero_dt_step_is_a_no_op() {
        let mut net = odroid_network();
        let powers = vec![Watts::new(5.0); net.len()];
        let before = net.temperatures().to_vec();
        let stats = net.step(Seconds::ZERO, &powers).unwrap();
        assert_eq!(stats, StepStats::default());
        assert_eq!(net.temperatures(), &before[..]);
    }

    #[test]
    fn starts_at_ambient() {
        let net = odroid_network();
        for &t in net.temperatures() {
            assert_eq!(t, net.ambient());
        }
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let mut net = odroid_network();
        let powers = vec![Watts::ZERO; net.len()];
        for _ in 0..100 {
            net.step(Seconds::new(1.0), &powers).unwrap();
        }
        for &t in net.temperatures() {
            assert!((t.value() - net.ambient().value()).abs() < 1e-9);
        }
    }

    #[test]
    fn relaxes_back_to_ambient() {
        let mut net = odroid_network();
        net.set_uniform_temperature(Kelvin::new(360.0));
        let powers = vec![Watts::ZERO; net.len()];
        for _ in 0..20_000 {
            net.step(Seconds::new(1.0), &powers).unwrap();
        }
        for &t in net.temperatures() {
            assert!((t.value() - net.ambient().value()).abs() < 0.01, "t = {t}");
        }
    }

    #[test]
    fn integration_converges_to_steady_state() {
        let mut net = odroid_network();
        let big = net.node_index("big").unwrap();
        let gpu = net.node_index("gpu").unwrap();
        let mut powers = vec![Watts::ZERO; net.len()];
        powers[big] = Watts::new(2.0);
        powers[gpu] = Watts::new(1.5);
        let ss = net.steady_state(&powers).unwrap();
        for _ in 0..5_000 {
            net.step(Seconds::new(1.0), &powers).unwrap();
        }
        for (i, &t) in net.temperatures().iter().enumerate() {
            assert!(
                (t.value() - ss[i].value()).abs() < 0.05,
                "node {i}: integrated {t} vs steady {}",
                ss[i]
            );
        }
    }

    #[test]
    fn hotter_node_is_the_powered_one() {
        let mut net = odroid_network();
        let big = net.node_index("big").unwrap();
        let mut powers = vec![Watts::ZERO; net.len()];
        powers[big] = Watts::new(3.0);
        for _ in 0..3_000 {
            net.step(Seconds::new(1.0), &powers).unwrap();
        }
        let (hot, _) = net.hottest();
        assert_eq!(hot, big);
    }

    #[test]
    fn big_cluster_gain_matches_hand_calculation() {
        // Power injected at the big node flows through G(big,board)=0.45
        // then G(board,amb)=0.052 (plus a small parallel path through the
        // GPU lateral coupling), so the self-gain is slightly below
        // 1/0.45 + 1/0.052 = 21.5 K/W.
        let net = odroid_network();
        let big = net.node_index("big").unwrap();
        let g = net.gain(big, big).unwrap();
        assert!(g > 19.5 && g < 21.6, "gain = {g}");
    }

    #[test]
    fn odroid_reaches_paper_figure8_band_at_3_65w() {
        // The paper's Figure 8 shows ~85-95 C for 3DMark + BML (3.65 W
        // total). Check the steady-state hotspot lands in that band with a
        // representative power split (big-heavy, as in Fig. 9b).
        let net = odroid_network();
        let mut powers = vec![Watts::ZERO; net.len()];
        powers[net.node_index("little").unwrap()] = Watts::new(0.26);
        powers[net.node_index("big").unwrap()] = Watts::new(2.19);
        powers[net.node_index("gpu").unwrap()] = Watts::new(0.9);
        powers[net.node_index("mem").unwrap()] = Watts::new(0.3);
        let ss = net.steady_state(&powers).unwrap();
        let hot = ss
            .iter()
            .map(|t| t.to_celsius().value())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((85.0..105.0).contains(&hot), "hotspot = {hot} C");
    }

    #[test]
    fn power_length_mismatch_is_rejected() {
        let mut net = odroid_network();
        let err = net.step(Seconds::new(0.1), &[Watts::ZERO]).unwrap_err();
        assert!(matches!(err, ThermalError::PowerLengthMismatch { .. }));
        assert!(net.steady_state(&[Watts::ZERO]).is_err());
    }

    #[test]
    fn set_temperatures_validates_length() {
        let mut net = odroid_network();
        assert!(net.set_temperatures(&[Kelvin::new(300.0)]).is_err());
        let temps = vec![Kelvin::new(310.0); net.len()];
        net.set_temperatures(&temps).unwrap();
        assert_eq!(net.temperature(0), Kelvin::new(310.0));
    }

    #[test]
    fn named_lookups() {
        let net = odroid_network();
        assert!(net.temperature_of("big").is_ok());
        assert!(matches!(
            net.temperature_of("nope").unwrap_err(),
            ThermalError::UnknownNode { .. }
        ));
        let c = net.celsius_of("board").unwrap();
        assert!((c.value() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn skin_lags_behind_the_package_and_runs_cooler() {
        let mut net = RcNetwork::from_spec(platforms::snapdragon_810().thermal_spec()).unwrap();
        let gpu = net.node_index("gpu").unwrap();
        let pkg = net.node_index("package").unwrap();
        let skin = net.node_index("skin").unwrap();
        let mut powers = vec![Watts::ZERO; net.len()];
        powers[gpu] = Watts::new(2.5);
        // Early in the transient the skin trails the package clearly.
        let mut t = 0.0;
        while t < 30.0 {
            net.step(Seconds::new(0.5), &powers).unwrap();
            t += 0.5;
        }
        let early_gap = net.temperature(pkg).value() - net.temperature(skin).value();
        assert!(early_gap > 1.0, "early gap {early_gap}");
        // At steady state the skin stays slightly cooler than the
        // package (heat flows package -> skin -> ambient).
        while t < 2000.0 {
            net.step(Seconds::new(1.0), &powers).unwrap();
            t += 1.0;
        }
        let pkg_c = net.temperature(pkg).to_celsius().value();
        let skin_c = net.temperature(skin).to_celsius().value();
        assert!(skin_c < pkg_c, "skin {skin_c} vs package {pkg_c}");
        assert!(pkg_c - skin_c < 5.0, "skin tracks the package");
    }

    #[test]
    fn dominant_time_constant_matches_relaxation() {
        // Heat the whole board, release, and check the observed decay
        // rate of the slowest phase against the computed constant.
        let mut net = odroid_network();
        let tau = net.dominant_time_constant().unwrap().value();
        assert!(tau > 5.0 && tau < 500.0, "tau = {tau}");
        net.set_uniform_temperature(Kelvin::new(350.0));
        let powers = vec![Watts::ZERO; net.len()];
        // Skip the fast initial modes.
        let mut elapsed = 0.0;
        while elapsed < tau {
            net.step(Seconds::new(0.5), &powers).unwrap();
            elapsed += 0.5;
        }
        let d0 = net.hottest().1.value() - net.ambient().value();
        while elapsed < 2.0 * tau {
            net.step(Seconds::new(0.5), &powers).unwrap();
            elapsed += 0.5;
        }
        let d1 = net.hottest().1.value() - net.ambient().value();
        let observed = tau / (d0 / d1).ln();
        let rel = (observed - tau).abs() / tau;
        assert!(rel < 0.1, "computed tau {tau}, observed {observed}");
    }

    #[test]
    fn reduce_produces_consistent_lumped_resistance() {
        let net = odroid_network();
        let big = net.node_index("big").unwrap();
        let mut powers = vec![Watts::ZERO; net.len()];
        powers[big] = Watts::new(3.0);
        let lumped = net.reduce(&powers, big, 1700.0, 8000.0).unwrap();
        // All power at the big node: R_eq equals the big self-gain.
        let g = net.gain(big, big).unwrap();
        assert!((lumped.r_th() - g).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_steady_state_is_monotone_in_power(p1 in 0.0_f64..4.0, p2 in 0.0_f64..4.0) {
            let net = odroid_network();
            let big = net.node_index("big").unwrap();
            let mut powers = vec![Watts::ZERO; net.len()];
            powers[big] = Watts::new(p1);
            let t1 = net.steady_state(&powers).unwrap()[big];
            powers[big] = Watts::new(p2);
            let t2 = net.steady_state(&powers).unwrap()[big];
            if p1 < p2 {
                prop_assert!(t1 <= t2);
            }
        }

        #[test]
        fn prop_all_nodes_at_or_above_ambient(p in 0.0_f64..5.0, node in 0usize..4) {
            let net = odroid_network();
            let mut powers = vec![Watts::ZERO; net.len()];
            powers[node] = Watts::new(p);
            let ss = net.steady_state(&powers).unwrap();
            for t in ss {
                prop_assert!(t.value() >= net.ambient().value() - 1e-9);
            }
        }

        #[test]
        fn prop_exact_lti_tracks_fine_euler_within_a_tenth_of_a_degree(
            dt in 0.001_f64..1.0,
            platform_pick in 0_u8..2,
            p1 in 0.5_f64..2.5,
            p2 in 0.0_f64..1.5,
        ) {
            // The satellite acceptance bound: over a 60 s trajectory the
            // exact solver (stepping at a random 1 ms–1 s dt) and a
            // fine-step forward-Euler reference (1 ms substeps) agree
            // within 0.1 °C on every node, for both platform networks.
            let platform = if platform_pick == 1 {
                platforms::snapdragon_810()
            } else {
                platforms::exynos_5422()
            };
            let spec = platform.thermal_spec();
            let mut exact = RcNetwork::from_spec(spec).unwrap();
            let mut euler =
                RcNetwork::with_solver(spec, SolverKind::ForwardEuler, None).unwrap();
            let mut powers = vec![Watts::ZERO; exact.len()];
            powers[1] = Watts::new(p1);
            powers[2] = Watts::new(p2);
            let mut t = 0.0;
            while t < 60.0 {
                let step = dt.min(60.0 - t);
                exact.step(Seconds::new(step), &powers).unwrap();
                t += step;
            }
            let fine = Seconds::from_millis(1.0);
            for _ in 0..60_000 {
                euler.step(fine, &powers).unwrap();
            }
            for i in 0..exact.len() {
                let gap =
                    (exact.temperature(i).value() - euler.temperature(i).value()).abs();
                prop_assert!(gap < 0.1, "node {i}: gap {gap} K");
            }
        }

        #[test]
        fn prop_substepping_is_consistent(dt in 0.01_f64..20.0) {
            // One big step must land near many small steps.
            let mut coarse = odroid_network();
            let mut fine = odroid_network();
            let big = coarse.node_index("big").unwrap();
            let mut powers = vec![Watts::ZERO; coarse.len()];
            powers[big] = Watts::new(3.0);
            coarse.step(Seconds::new(dt), &powers).unwrap();
            for _ in 0..100 {
                fine.step(Seconds::new(dt / 100.0), &powers).unwrap();
            }
            for i in 0..coarse.len() {
                prop_assert!(
                    (coarse.temperature(i).value() - fine.temperature(i).value()).abs() < 0.5
                );
            }
        }
    }
}
