//! The lumped power–temperature stability analysis (paper Section IV-A,
//! after Bhat, Gumussoy & Ogras, TECS 2017).
//!
//! Model: a single thermal node with resistance `R` to ambient, time
//! constant `τ`, and temperature-dependent leakage:
//!
//! ```text
//! τ·dT/dt = T_a − T + R·(P_dyn + g·T²·e^(−β/T)),   g = α·V  ("leak gain")
//! ```
//!
//! Substituting the **auxiliary temperature** `θ = β/T` (inversely
//! proportional to the Kelvin temperature — a *higher* auxiliary
//! temperature corresponds to a *lower* temperature, exactly as the paper
//! states) gives `τ·dθ/dt = F(θ)` with the **fixed-point function**
//!
//! ```text
//! F(θ) = θ − c·θ² − d·e^(−θ),   c = (T_a + R·P_dyn)/β,   d = R·g·β
//! ```
//!
//! `F'' = −2c − d·e^(−θ) < 0`: `F` is strictly concave, negative at both
//! ends, so it has at most two roots (Figure 7). Between the roots `F > 0`
//! and `θ` grows toward the larger root — the larger root (lower
//! temperature) is the **stable** fixed point, the smaller root is
//! **unstable**, and trajectories left of it (hotter) run away. The roots
//! merge when power reaches the **critical power**, which has a closed
//! form: at the double root, `d = θ/(θ+2)·e^θ` and
//! `c = (θ+1)/(θ(θ+2))`.

use mpt_units::{Kelvin, Seconds, Watts};

use crate::{Result, ThermalError};

/// The pair of temperature fixed points of a stable configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPoints {
    /// The attracting fixed point (the lower temperature / larger root).
    pub stable: Kelvin,
    /// The repelling fixed point (the higher temperature / smaller root).
    pub unstable: Kelvin,
    /// Auxiliary temperature `β/T` of the stable point.
    pub stable_aux: f64,
    /// Auxiliary temperature `β/T` of the unstable point.
    pub unstable_aux: f64,
}

/// The stability classification of the power–temperature dynamics at a
/// given dynamic power (paper Figure 7 a/b/c).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stability {
    /// Two fixed points: trajectories starting below the unstable point
    /// converge to the stable one (Figure 7a).
    Stable(FixedPoints),
    /// The roots have merged: a single, critically stable point
    /// (Figure 7b).
    CriticallyStable {
        /// The double root.
        point: Kelvin,
    },
    /// No fixed points: thermal runaway (Figure 7c).
    Runaway,
}

impl Stability {
    /// The stable steady-state temperature, if one exists.
    #[must_use]
    pub fn steady_state(&self) -> Option<Kelvin> {
        match self {
            Stability::Stable(fp) => Some(fp.stable),
            Stability::CriticallyStable { point } => Some(*point),
            Stability::Runaway => None,
        }
    }
}

/// A lumped power–temperature model with leakage feedback.
///
/// # Examples
///
/// ```
/// use mpt_thermal::LumpedModel;
/// use mpt_units::Watts;
///
/// let m = LumpedModel::odroid_xu3();
/// // The Odroid calibration puts the critical power at 5.5 W (Fig. 7b).
/// assert!((m.critical_power().value() - 5.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LumpedModel {
    t_ambient: Kelvin,
    r_th: f64,
    beta: f64,
    leak_gain: f64,
    tau: Seconds,
}

impl LumpedModel {
    /// Creates a lumped model.
    ///
    /// `r_th` is the thermal resistance in K/W, `beta` the leakage
    /// activation constant in Kelvin, `leak_gain = α·V` the leakage
    /// magnitude in W/K², and `tau` the thermal time constant.
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidParameter`] for non-positive or non-finite
    /// parameters (`leak_gain` may be zero: a leakage-free model).
    pub fn new(
        t_ambient: Kelvin,
        r_th: f64,
        beta: f64,
        leak_gain: f64,
        tau: Seconds,
    ) -> Result<Self> {
        fn check(name: &'static str, v: f64, allow_zero: bool) -> Result<()> {
            let ok = v.is_finite() && (v > 0.0 || (allow_zero && v == 0.0));
            if ok {
                Ok(())
            } else {
                Err(ThermalError::InvalidParameter { name, value: v })
            }
        }
        check("t_ambient", t_ambient.value(), false)?;
        check("r_th", r_th, false)?;
        check("beta", beta, false)?;
        check("leak_gain", leak_gain, true)?;
        check("tau", tau.value(), false)?;
        Ok(Self {
            t_ambient,
            r_th,
            beta,
            leak_gain,
            tau,
        })
    }

    /// The lumped Odroid-XU3 parameters used for the paper's Figure 7:
    /// 25 °C ambient, 17 K/W hotspot resistance with the fan disabled,
    /// `β = 8000 K`, and the leak gain calibrated so the critical power is
    /// exactly 5.5 W (the paper: "the roots of the fixed-point function
    /// converge … when the power consumption reaches 5.5 W").
    #[must_use]
    pub fn odroid_xu3() -> Self {
        let t_a = Kelvin::new(298.15);
        let (r, beta) = (17.0, 8000.0);
        let gain = Self::calibrate_leak_gain(t_a, r, beta, Watts::new(5.5))
            .expect("odroid preset calibration is valid");
        Self::new(t_a, r, beta, gain, Seconds::new(340.0))
            .expect("odroid preset parameters are valid")
    }

    /// Solves for the leak gain `g = α·V` that places the critical power
    /// at `p_crit`, using the closed-form double-root condition
    /// `c = (θ+1)/(θ(θ+2))`, `d = θ/(θ+2)·e^θ`.
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidParameter`] if the inputs are non-positive
    /// or if `p_crit` is unreachable (the implied `c ≥ 1/2`... i.e. the
    /// linear steady state at `p_crit` would already be below ambient
    /// scale).
    pub fn calibrate_leak_gain(
        t_ambient: Kelvin,
        r_th: f64,
        beta: f64,
        p_crit: Watts,
    ) -> Result<f64> {
        if !(r_th > 0.0 && beta > 0.0 && p_crit.value() > 0.0) {
            return Err(ThermalError::InvalidParameter {
                name: "calibration",
                value: r_th,
            });
        }
        let c = (t_ambient.value() + r_th * p_crit.value()) / beta;
        if c <= 0.0 || c >= 0.5 {
            return Err(ThermalError::InvalidParameter {
                name: "c",
                value: c,
            });
        }
        let one_minus = 1.0 - 2.0 * c;
        let theta = (one_minus + (one_minus * one_minus + 4.0 * c).sqrt()) / (2.0 * c);
        let d = theta / (theta + 2.0) * theta.exp();
        Ok(d / (r_th * beta))
    }

    /// Ambient temperature.
    #[must_use]
    pub const fn t_ambient(&self) -> Kelvin {
        self.t_ambient
    }

    /// Thermal resistance in K/W.
    #[must_use]
    pub const fn r_th(&self) -> f64 {
        self.r_th
    }

    /// Leakage activation constant β in Kelvin.
    #[must_use]
    pub const fn beta(&self) -> f64 {
        self.beta
    }

    /// Leakage magnitude `g = α·V` in W/K².
    #[must_use]
    pub const fn leak_gain(&self) -> f64 {
        self.leak_gain
    }

    /// Thermal time constant.
    #[must_use]
    pub const fn tau(&self) -> Seconds {
        self.tau
    }

    /// The auxiliary temperature `θ = β/T` for an absolute temperature.
    ///
    /// Higher `θ` ⇔ lower temperature.
    #[must_use]
    pub fn aux_temperature(&self, t: Kelvin) -> f64 {
        self.beta / t.value()
    }

    /// The absolute temperature for an auxiliary temperature.
    #[must_use]
    pub fn temperature_from_aux(&self, theta: f64) -> Kelvin {
        Kelvin::new(self.beta / theta)
    }

    /// Leakage power at temperature `t`.
    #[must_use]
    pub fn leakage(&self, t: Kelvin) -> Watts {
        let tk = t.value();
        Watts::new(self.leak_gain * tk * tk * (-self.beta / tk).exp())
    }

    fn coeffs(&self, p_dyn: Watts) -> (f64, f64) {
        let c = (self.t_ambient.value() + self.r_th * p_dyn.value()) / self.beta;
        let d = self.r_th * self.leak_gain * self.beta;
        (c, d)
    }

    /// The fixed-point function `F(θ) = θ − c·θ² − d·e^(−θ)` at dynamic
    /// power `p_dyn` (the curves of the paper's Figure 7).
    #[must_use]
    pub fn fixed_point_function(&self, theta: f64, p_dyn: Watts) -> f64 {
        let (c, d) = self.coeffs(p_dyn);
        theta - c * theta * theta - d * (-theta).exp()
    }

    /// `F'(θ) = 1 − 2cθ + d·e^(−θ)`, strictly decreasing.
    fn fixed_point_derivative(&self, theta: f64, p_dyn: Watts) -> f64 {
        let (c, d) = self.coeffs(p_dyn);
        1.0 - 2.0 * c * theta + d * (-theta).exp()
    }

    /// The auxiliary temperature maximizing `F` (unique since `F` is
    /// strictly concave and `F'` strictly decreasing).
    fn argmax_theta(&self, p_dyn: Watts) -> f64 {
        let (c, _) = self.coeffs(p_dyn);
        // F'(0+) = 1 + d > 0. Find an upper bracket where F' < 0.
        let mut hi = (1.0 / c).max(4.0);
        while self.fixed_point_derivative(hi, p_dyn) > 0.0 {
            hi *= 2.0;
            if hi > 1e9 {
                break;
            }
        }
        let mut lo = 1e-12;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.fixed_point_derivative(mid, p_dyn) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    fn bisect_root(&self, mut lo: f64, mut hi: f64, p_dyn: Watts) -> f64 {
        // Invariant: F(lo) and F(hi) have opposite signs.
        let f_lo = self.fixed_point_function(lo, p_dyn);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let f_mid = self.fixed_point_function(mid, p_dyn);
            if (f_mid > 0.0) == (f_lo > 0.0) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Classifies the power–temperature dynamics at dynamic power
    /// `p_dyn`: two fixed points, critically stable, or runaway — the
    /// decision procedure of the paper's Section IV-A ("we can determine
    /// the stability … by looking at the number of roots of the
    /// fixed-point function").
    #[must_use]
    pub fn stability(&self, p_dyn: Watts) -> Stability {
        let peak_theta = self.argmax_theta(p_dyn);
        let peak = self.fixed_point_function(peak_theta, p_dyn);
        if peak < -1e-9 {
            return Stability::Runaway;
        }
        if peak < 1e-9 {
            return Stability::CriticallyStable {
                point: self.temperature_from_aux(peak_theta),
            };
        }
        // F(ε) ≈ −d < 0 and F(θ) → −∞, so both brackets are valid.
        let mut hi = peak_theta + 1.0;
        while self.fixed_point_function(hi, p_dyn) > 0.0 {
            hi = peak_theta + (hi - peak_theta) * 2.0;
        }
        let unstable_aux = self.bisect_root(1e-12, peak_theta, p_dyn);
        let stable_aux = self.bisect_root(peak_theta, hi, p_dyn);
        Stability::Stable(FixedPoints {
            stable: self.temperature_from_aux(stable_aux),
            unstable: self.temperature_from_aux(unstable_aux),
            stable_aux,
            unstable_aux,
        })
    }

    /// The critical power and the temperature of the merged double root,
    /// or `None` for a leakage-free model (which never runs away).
    fn critical_point(&self) -> Option<(Watts, Kelvin)> {
        let d = self.r_th * self.leak_gain * self.beta;
        if d <= 0.0 {
            // No leakage feedback: never runs away.
            return None;
        }
        // Solve θ/(θ+2)·e^θ = d; the left side is strictly increasing.
        let mut lo = 1e-9;
        let mut hi = 1.0;
        let h = |theta: f64| theta / (theta + 2.0) * theta.exp();
        while h(hi) < d && hi < 1e3 {
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if h(mid) < d {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let theta = 0.5 * (lo + hi);
        let c = (theta + 1.0) / (theta * (theta + 2.0));
        let p = Watts::new(((c * self.beta - self.t_ambient.value()) / self.r_th).max(0.0));
        Some((p, self.temperature_from_aux(theta)))
    }

    /// The critical power: the largest dynamic power for which a fixed
    /// point exists (closed form via the double-root condition).
    ///
    /// Returns `Watts::ZERO` if the system is already unstable at zero
    /// dynamic power (pathological leakage), and an infinite budget for a
    /// leakage-free model.
    #[must_use]
    pub fn critical_power(&self) -> Watts {
        self.critical_point()
            .map_or(Watts::new(f64::INFINITY), |(p, _)| p)
    }

    /// The stable steady-state temperature at `p_dyn`, if the dynamics
    /// have a fixed point.
    #[must_use]
    pub fn steady_state_temperature(&self, p_dyn: Watts) -> Option<Kelvin> {
        self.stability(p_dyn).steady_state()
    }

    /// The largest dynamic power whose stable fixed point does not exceed
    /// `limit` — a thermally safe power budget in the spirit of the TSP
    /// line of work the paper cites. Inverse of
    /// [`steady_state_temperature`](Self::steady_state_temperature):
    /// at the fixed point `T = T_a + R·(P + leak(T))`, so
    /// `P = (limit − T_a)/R − leak(limit)`.
    ///
    /// Returns [`Watts::ZERO`] if the limit is at or below ambient (no
    /// budget exists), and caps the result at the critical power (beyond
    /// which the fixed point would not be stable anyway).
    #[must_use]
    pub fn power_budget_for_limit(&self, limit: Kelvin) -> Watts {
        if limit <= self.t_ambient {
            return Watts::ZERO;
        }
        // Limits past the critical temperature are unreachable as stable
        // fixed points: the budget saturates at the critical power (the
        // balance formula below would follow the *unstable* branch).
        if let Some((p_crit, t_crit)) = self.critical_point() {
            if limit >= t_crit {
                return p_crit;
            }
        }
        let raw =
            (limit.value() - self.t_ambient.value()) / self.r_th - self.leakage(limit).value();
        Watts::new(raw.max(0.0))
    }

    /// Instantaneous heating rate `dT/dt` at temperature `t` and dynamic
    /// power `p_dyn`.
    #[must_use]
    pub fn heating_rate(&self, t: Kelvin, p_dyn: Watts) -> f64 {
        let p_total = p_dyn + self.leakage(t);
        (self.t_ambient.value() - t.value() + self.r_th * p_total.value()) / self.tau.value()
    }

    /// Estimates the time for the temperature to rise from `from` to
    /// `target` at constant dynamic power, by integrating the lumped ODE
    /// (RK4). Returns `None` if `target` is not reached within `horizon`
    /// (either because the stable fixed point is below it, or because the
    /// horizon is too short). If `from >= target` the time is zero.
    ///
    /// This is the "time to reach the fixed point" estimate the paper's
    /// governor compares against a user-defined limit to decide whether a
    /// thermal violation is imminent.
    #[must_use]
    pub fn time_to_reach(
        &self,
        from: Kelvin,
        target: Kelvin,
        p_dyn: Watts,
        horizon: Seconds,
    ) -> Option<Seconds> {
        if from >= target {
            return Some(Seconds::ZERO);
        }
        let dt = (self.tau.value() / 400.0)
            .min(horizon.value() / 16.0)
            .max(1e-3);
        let mut t = from.value();
        let mut elapsed = 0.0;
        let deriv = |temp: f64| self.heating_rate(Kelvin::new(temp), p_dyn);
        while elapsed < horizon.value() {
            let k1 = deriv(t);
            let k2 = deriv(t + 0.5 * dt * k1);
            let k3 = deriv(t + 0.5 * dt * k2);
            let k4 = deriv(t + dt * k3);
            let step = dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
            if step.abs() < 1e-12 {
                // Equilibrium short of the target.
                return None;
            }
            t += step;
            elapsed += dt;
            if t >= target.value() {
                return Some(Seconds::new(elapsed));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn odroid() -> LumpedModel {
        LumpedModel::odroid_xu3()
    }

    #[test]
    fn figure7a_two_fixed_points_at_2w() {
        match odroid().stability(Watts::new(2.0)) {
            Stability::Stable(fp) => {
                // Stable point (larger aux root) is the *lower* temperature.
                assert!(fp.stable < fp.unstable);
                assert!(fp.stable_aux > fp.unstable_aux);
                // At 2 W the steady state should be a plausible operating
                // temperature, well below runaway.
                let c = fp.stable.to_celsius().value();
                assert!((40.0..90.0).contains(&c), "stable point {c} C");
            }
            other => panic!("expected two fixed points at 2 W, got {other:?}"),
        }
    }

    #[test]
    fn figure7b_critical_at_5_5w() {
        let m = odroid();
        let p_crit = m.critical_power();
        assert!(
            (p_crit.value() - 5.5).abs() < 1e-6,
            "critical power {p_crit}"
        );
        // Just below: stable. Just above: runaway.
        assert!(matches!(
            m.stability(Watts::new(5.45)),
            Stability::Stable(_)
        ));
        assert!(matches!(m.stability(Watts::new(5.55)), Stability::Runaway));
    }

    #[test]
    fn figure7c_runaway_at_8w() {
        assert!(matches!(
            odroid().stability(Watts::new(8.0)),
            Stability::Runaway
        ));
    }

    #[test]
    fn fixed_point_function_is_concave() {
        let m = odroid();
        let p = Watts::new(2.0);
        // Numerical concavity check over a wide θ range.
        let thetas: Vec<f64> = (1..400).map(|i| i as f64 * 0.1).collect();
        for w in thetas.windows(3) {
            let (f0, f1, f2) = (
                m.fixed_point_function(w[0], p),
                m.fixed_point_function(w[1], p),
                m.fixed_point_function(w[2], p),
            );
            assert!(f1 >= 0.5 * (f0 + f2) - 1e-9, "not concave near θ={}", w[1]);
        }
    }

    #[test]
    fn increasing_power_moves_the_function_down() {
        let m = odroid();
        for theta in [5.0, 10.0, 15.0, 20.0, 25.0] {
            let lo = m.fixed_point_function(theta, Watts::new(2.0));
            let hi = m.fixed_point_function(theta, Watts::new(8.0));
            assert!(hi < lo, "F must decrease with power at θ={theta}");
        }
    }

    #[test]
    fn roots_are_actual_zeros() {
        let m = odroid();
        if let Stability::Stable(fp) = m.stability(Watts::new(3.0)) {
            assert!(m.fixed_point_function(fp.stable_aux, Watts::new(3.0)).abs() < 1e-6);
            assert!(
                m.fixed_point_function(fp.unstable_aux, Watts::new(3.0))
                    .abs()
                    < 1e-6
            );
        } else {
            panic!("expected stable at 3 W");
        }
    }

    #[test]
    fn aux_temperature_is_inversely_proportional() {
        let m = odroid();
        let hot = m.aux_temperature(Kelvin::new(380.0));
        let cold = m.aux_temperature(Kelvin::new(300.0));
        assert!(hot < cold, "hotter temperature must give smaller aux value");
        let t = Kelvin::new(333.0);
        let rt = m.temperature_from_aux(m.aux_temperature(t));
        assert!((rt.value() - 333.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_matches_self_consistent_balance() {
        let m = odroid();
        let p = Watts::new(3.0);
        let t = m.steady_state_temperature(p).unwrap();
        // At the fixed point: T = T_a + R (P + leak(T)).
        let rhs = m.t_ambient().value() + m.r_th() * (p + m.leakage(t)).value();
        assert!((t.value() - rhs).abs() < 1e-6, "t={} rhs={rhs}", t.value());
    }

    #[test]
    fn steady_state_increases_with_power() {
        let m = odroid();
        let t1 = m.steady_state_temperature(Watts::new(1.0)).unwrap();
        let t2 = m.steady_state_temperature(Watts::new(3.0)).unwrap();
        let t3 = m.steady_state_temperature(Watts::new(5.0)).unwrap();
        assert!(t1 < t2 && t2 < t3);
    }

    #[test]
    fn zero_leakage_model_never_runs_away() {
        let m =
            LumpedModel::new(Kelvin::new(298.15), 10.0, 8000.0, 0.0, Seconds::new(100.0)).unwrap();
        assert_eq!(m.critical_power(), Watts::new(f64::INFINITY));
        let t = m.steady_state_temperature(Watts::new(4.0)).unwrap();
        // Pure linear model: T = T_a + R P.
        assert!((t.value() - (298.15 + 40.0)).abs() < 1e-3);
    }

    #[test]
    fn calibration_round_trips() {
        for target in [3.0, 5.5, 8.0] {
            let gain = LumpedModel::calibrate_leak_gain(
                Kelvin::new(298.15),
                17.0,
                8000.0,
                Watts::new(target),
            )
            .unwrap();
            let m = LumpedModel::new(Kelvin::new(298.15), 17.0, 8000.0, gain, Seconds::new(300.0))
                .unwrap();
            assert!(
                (m.critical_power().value() - target).abs() < 1e-6,
                "target {target}"
            );
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let t = Kelvin::new(298.0);
        let tau = Seconds::new(100.0);
        assert!(LumpedModel::new(Kelvin::new(0.0), 1.0, 1.0, 1.0, tau).is_err());
        assert!(LumpedModel::new(t, -1.0, 1.0, 1.0, tau).is_err());
        assert!(LumpedModel::new(t, 1.0, 0.0, 1.0, tau).is_err());
        assert!(LumpedModel::new(t, 1.0, 1.0, -0.5, tau).is_err());
        assert!(LumpedModel::new(t, 1.0, 1.0, 1.0, Seconds::ZERO).is_err());
        assert!(LumpedModel::new(t, f64::NAN, 1.0, 1.0, tau).is_err());
    }

    #[test]
    fn time_to_reach_is_zero_when_already_there() {
        let m = odroid();
        let t = m.time_to_reach(
            Kelvin::new(350.0),
            Kelvin::new(340.0),
            Watts::new(3.0),
            Seconds::new(100.0),
        );
        assert_eq!(t, Some(Seconds::ZERO));
    }

    #[test]
    fn time_to_reach_none_when_fixed_point_is_below_target() {
        let m = odroid();
        let ss = m.steady_state_temperature(Watts::new(2.0)).unwrap();
        let target = Kelvin::new(ss.value() + 10.0);
        let t = m.time_to_reach(m.t_ambient(), target, Watts::new(2.0), Seconds::new(5000.0));
        assert_eq!(t, None);
    }

    #[test]
    fn time_to_reach_agrees_with_forward_simulation() {
        let m = odroid();
        let p = Watts::new(4.0);
        let from = m.t_ambient();
        let target = Kelvin::new(from.value() + 30.0);
        let t = m
            .time_to_reach(from, target, p, Seconds::new(10_000.0))
            .expect("target below fixed point must be reached");
        // Cross-check with a fine Euler simulation.
        let mut temp = from.value();
        let mut elapsed = 0.0;
        let dt = 0.01;
        while temp < target.value() {
            temp += dt * m.heating_rate(Kelvin::new(temp), p);
            elapsed += dt;
            assert!(elapsed < 20_000.0, "simulation runaway");
        }
        let rel = (t.value() - elapsed).abs() / elapsed;
        assert!(rel < 0.02, "rk4 {} vs euler {elapsed}", t.value());
    }

    #[test]
    fn hotter_start_reaches_target_sooner() {
        let m = odroid();
        let p = Watts::new(4.5);
        let target = Kelvin::new(360.0);
        let horizon = Seconds::new(10_000.0);
        let slow = m
            .time_to_reach(Kelvin::new(300.0), target, p, horizon)
            .unwrap();
        let fast = m
            .time_to_reach(Kelvin::new(330.0), target, p, horizon)
            .unwrap();
        assert!(fast < slow);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_stability_is_monotone_in_power(p in 0.1_f64..12.0) {
            // Once unstable, more power can never make it stable again.
            let m = odroid();
            let p_crit = m.critical_power().value();
            match m.stability(Watts::new(p)) {
                Stability::Stable(_) => prop_assert!(p <= p_crit + 1e-6),
                Stability::Runaway => prop_assert!(p >= p_crit - 1e-6),
                Stability::CriticallyStable { .. } => {
                    prop_assert!((p - p_crit).abs() < 1e-3)
                }
            }
        }

        #[test]
        fn prop_stable_point_below_unstable_point(p in 0.1_f64..5.4) {
            let m = odroid();
            if let Stability::Stable(fp) = m.stability(Watts::new(p)) {
                prop_assert!(fp.stable.value() < fp.unstable.value());
                prop_assert!(fp.stable.value() > m.t_ambient().value());
            }
        }

        #[test]
        fn prop_heating_rate_sign_matches_fixed_points(p in 0.5_f64..5.0, t in 300.0_f64..420.0) {
            let m = odroid();
            if let Stability::Stable(fp) = m.stability(Watts::new(p)) {
                let rate = m.heating_rate(Kelvin::new(t), Watts::new(p));
                if t < fp.stable.value() - 0.1 {
                    prop_assert!(rate > 0.0, "below stable point must heat");
                } else if t > fp.stable.value() + 0.1 && t < fp.unstable.value() - 0.1 {
                    prop_assert!(rate < 0.0, "between points must cool toward stable");
                } else if t > fp.unstable.value() + 0.1 {
                    prop_assert!(rate > 0.0, "beyond unstable point must run away");
                }
            }
        }
    }

    #[test]
    fn power_budget_inverts_steady_state() {
        let m = odroid();
        for limit_c in [60.0, 80.0, 95.0] {
            let limit = Kelvin::new(273.15 + limit_c);
            let budget = m.power_budget_for_limit(limit);
            // Running exactly at the budget lands exactly on the limit.
            let t = m
                .steady_state_temperature(budget)
                .expect("stable at budget");
            assert!(
                (t.value() - limit.value()).abs() < 1e-6,
                "limit {limit_c}: budget {budget} gives {t}"
            );
            // A little more power exceeds the limit.
            let t_over = m.steady_state_temperature(budget + Watts::new(0.05));
            assert!(t_over.is_none_or(|t| t > limit));
        }
    }

    #[test]
    fn power_budget_edge_cases() {
        let m = odroid();
        assert_eq!(m.power_budget_for_limit(m.t_ambient()), Watts::ZERO);
        assert_eq!(m.power_budget_for_limit(Kelvin::new(200.0)), Watts::ZERO);
        // An absurdly high limit is capped at the critical power.
        let huge = m.power_budget_for_limit(Kelvin::new(500.0));
        assert!((huge.value() - m.critical_power().value()).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_power_budget_monotone_in_limit(a in 310.0_f64..420.0, b in 310.0_f64..420.0) {
            let m = odroid();
            let (pa, pb) = (
                m.power_budget_for_limit(Kelvin::new(a)),
                m.power_budget_for_limit(Kelvin::new(b)),
            );
            if a < b {
                prop_assert!(pa <= pb);
            }
        }
    }
}
