//! Pluggable thermal-step solvers.
//!
//! The RC network's heat equation is linear time-invariant, so a step of
//! fixed `dt` is an affine map of the state. Two interchangeable
//! [`ThermalSolver`]s exploit that to different degrees:
//!
//! - [`ForwardEuler`] — the historical explicit integrator, sub-stepping
//!   to stay inside the stability bound. Kept verbatim as the reference:
//!   its arithmetic is bit-identical to the pre-solver-layer
//!   `RcNetwork::step`.
//! - [`ExactLti`] — discretizes the system once per `(dynamics, dt)` as
//!   `x[k+1] = Ad·x[k] + Bd·P[k]` with `Ad = exp(A·dt)` and
//!   `Bd = A⁻¹(Ad − I)B`, then advances every tick with a single cached
//!   mat-vec, exact for piecewise-constant power regardless of stiffness
//!   or step size.
//!
//! Discretizations live in a [`TransitionCache`] keyed by the network
//! fingerprint and the step size, so a campaign sweeping twelve cells of
//! the same platform factors the network exactly once and shares the
//! immutable `Ad`/`Bd` across worker threads.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mpt_soc::ThermalLti;
use mpt_units::{Kelvin, Seconds, Watts};

use crate::{linalg, FleetState, Result, ThermalError};

/// What one solver step did, for observability counters.
///
/// Every field is driven by simulated inputs only (never wall-clock), so
/// totals aggregated over a run are bit-identical across repeats and
/// worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepStats {
    /// Integration substeps actually executed.
    pub substeps: u32,
    /// Explicit-Euler substeps the step would have needed but did not
    /// execute (0 for [`ForwardEuler`] itself).
    pub substeps_avoided: u32,
    /// Whether the step found its discretization in the shared cache.
    pub cache_hit: bool,
    /// Whether the step built and inserted a new discretization.
    pub cache_build: bool,
}

/// A strategy for advancing an RC network by one step.
///
/// Implementations own any per-network scratch state (memoized
/// discretizations, work buffers); the immutable system description is
/// passed in as a [`ThermalLti`] each call.
pub trait ThermalSolver: fmt::Debug + Send {
    /// The solver's stable name (matches [`SolverKind::name`]).
    fn name(&self) -> &'static str;

    /// Advances `temperatures` by `dt` under per-node injected `powers`.
    ///
    /// The caller guarantees `dt > 0` and matching slice lengths.
    ///
    /// # Errors
    ///
    /// [`ThermalError::SingularNetwork`] if a discretization cannot be
    /// factored (a node with no path to ambient).
    fn step(
        &mut self,
        lti: &ThermalLti,
        temperatures: &mut [Kelvin],
        dt: Seconds,
        powers: &[Watts],
    ) -> Result<StepStats>;

    /// Advances every device of a [`FleetState`] by `dt`.
    ///
    /// Semantics are defined by the scalar path: device `d` behaves
    /// exactly as an independent network whose [`ThermalLti`] differs
    /// from `lti` only in `ambient` (the fleet's per-device ambient) —
    /// same inputs produce the same bits as N separate [`step`] calls.
    /// This default implementation *is* that per-device loop; solvers
    /// with batch structure (the exact-LTI multi-RHS kernel) override it.
    ///
    /// The returned stats describe the discretization work of the batch
    /// step, not per-device work: `substeps` totals scalar-equivalent
    /// substeps across devices for looping solvers and stays 1 for a
    /// true batch pass; the cache flags are OR-ed.
    ///
    /// [`step`]: ThermalSolver::step
    ///
    /// # Errors
    ///
    /// [`ThermalError::SingularNetwork`] as for [`step`](ThermalSolver::step).
    fn step_batch(
        &mut self,
        lti: &ThermalLti,
        fleet: &mut FleetState,
        dt: Seconds,
    ) -> Result<StepStats> {
        let nodes = fleet.nodes();
        debug_assert_eq!(nodes, lti.len());
        let mut totals = StepStats::default();
        let mut temps = Vec::with_capacity(nodes);
        let mut powers = vec![Watts::ZERO; nodes];
        let mut lti_d = lti.clone();
        for d in 0..fleet.devices() {
            fleet.device_temps_into(d, &mut temps);
            for (node, p) in powers.iter_mut().enumerate() {
                *p = fleet.power(node, d);
            }
            lti_d.ambient = fleet.ambient(d);
            let stats = self.step(&lti_d, &mut temps, dt, &powers)?;
            totals.substeps += stats.substeps;
            totals.substeps_avoided = totals.substeps_avoided.max(stats.substeps_avoided);
            totals.cache_hit |= stats.cache_hit;
            totals.cache_build |= stats.cache_build;
            for (node, t) in temps.iter().enumerate() {
                fleet.set_temp(node, d, *t);
            }
        }
        Ok(totals)
    }

    /// Clones the solver behind a fresh box (scratch state included).
    fn box_clone(&self) -> Box<dyn ThermalSolver>;
}

impl Clone for Box<dyn ThermalSolver> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// The reference explicit integrator with stability sub-stepping.
///
/// The inner loop is kept byte-for-byte equivalent to the pre-solver
/// `RcNetwork::step`, so `"solver": "forward_euler"` reproduces historical
/// trajectories exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForwardEuler;

impl ThermalSolver for ForwardEuler {
    fn name(&self) -> &'static str {
        SolverKind::ForwardEuler.name()
    }

    #[allow(clippy::needless_range_loop)] // indexed loops mirror the matrix math
    fn step(
        &mut self,
        lti: &ThermalLti,
        temperatures: &mut [Kelvin],
        dt: Seconds,
        powers: &[Watts],
    ) -> Result<StepStats> {
        let total = dt.value();
        let substeps = (total / lti.euler_max_step).ceil().max(1.0) as usize;
        let h = total / substeps as f64;
        let n = temperatures.len();
        for _ in 0..substeps {
            let mut deriv = vec![0.0; n];
            for i in 0..n {
                let ti = temperatures[i].value();
                let mut flow = powers[i].value();
                for j in 0..n {
                    let g = lti.conductance[i][j];
                    if g > 0.0 {
                        flow -= g * (ti - temperatures[j].value());
                    }
                }
                flow -= lti.ambient_conductance[i] * (ti - lti.ambient.value());
                deriv[i] = flow / lti.heat_capacity[i];
            }
            for i in 0..n {
                temperatures[i] = Kelvin::new(temperatures[i].value() + h * deriv[i]);
            }
        }
        Ok(StepStats {
            substeps: substeps as u32,
            ..StepStats::default()
        })
    }

    fn box_clone(&self) -> Box<dyn ThermalSolver> {
        Box::new(*self)
    }
}

/// One exact discretization `T[k+1] = Ad·T[k] + Bd·P[k]` (in deviation
/// coordinates around ambient). `Ad` is flat row-major for the mat-vec;
/// `Bd` is stored *column*-major so the step can skip whole columns for
/// nodes injecting no power (most nodes, most ticks).
#[derive(Debug)]
pub struct Discretization {
    n: usize,
    ad: Vec<f64>,
    bd_cols: Vec<f64>,
}

impl Discretization {
    /// Discretizes `dx/dt = A·x + B·P` exactly at step `dt`:
    /// `Ad = exp(A·dt)` by scaling-and-squaring and
    /// `Bd = A⁻¹(Ad − I)B` by an LU solve with matrix right-hand side.
    ///
    /// # Errors
    ///
    /// [`ThermalError::SingularNetwork`] if `A` cannot be factored.
    pub fn build(lti: &ThermalLti, dt: f64) -> Result<Self> {
        let n = lti.len();
        let mut a_dt = linalg::Mat::from_rows(&lti.a);
        for i in 0..n {
            for v in a_dt.row_mut(i) {
                *v *= dt;
            }
        }
        let ad = linalg::expm(&a_dt);
        let mut ad_minus_i = ad.clone();
        for i in 0..n {
            ad_minus_i[(i, i)] -= 1.0;
        }
        let phi = linalg::solve_multi(linalg::Mat::from_rows(&lti.a), ad_minus_i)
            .ok_or(ThermalError::SingularNetwork)?;
        // Bd[i][j] = phi[i][j] · b_diag[j], laid out by column j.
        let mut bd_cols = Vec::with_capacity(n * n);
        for j in 0..n {
            let b = lti.b_diag[j];
            bd_cols.extend((0..n).map(|i| phi[(i, j)] * b));
        }
        Ok(Self {
            n,
            ad: ad.into_vec(),
            bd_cols,
        })
    }

    /// The state dimension.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the discretization has no states.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The flat row-major `Ad = exp(A·dt)` matrix.
    #[must_use]
    pub fn ad(&self) -> &[f64] {
        &self.ad
    }

    /// The column-major `Bd = A⁻¹(Ad − I)B` matrix
    /// (`bd_cols[j·n + i] = Bd[i][j]`).
    #[must_use]
    pub fn bd_cols(&self) -> &[f64] {
        &self.bd_cols
    }

    /// Propagates a guaranteed state envelope one tick forward:
    /// given `x_k ∈ [lo, hi]` (elementwise, deviation coordinates) and a
    /// per-node power interval `p_k ∈ [p_lo, p_hi]`, overwrites
    /// `lo`/`hi` with outward-rounded bounds on
    /// `x_{k+1} = Ad·x_k + Bd·p_k`.
    ///
    /// This is the abstract transformer of the MPT6xx reachability
    /// verifier: because it reuses the *same cached* `(Ad, Bd)` the
    /// exact-LTI solver steps with, every concrete trajectory whose power
    /// stays inside the interval is contained in the envelope by
    /// induction, with outward rounding absorbing floating-point error.
    pub fn step_interval(&self, lo: &mut [f64], hi: &mut [f64], p_lo: &[f64], p_hi: &[f64]) {
        let n = self.n;
        debug_assert_eq!(lo.len(), n);
        debug_assert_eq!(hi.len(), n);
        debug_assert_eq!(p_lo.len(), n);
        debug_assert_eq!(p_hi.len(), n);
        let mut next_lo = vec![0.0; n];
        let mut next_hi = vec![0.0; n];
        linalg::interval_mat_vec(&self.ad, n, lo, hi, &mut next_lo, &mut next_hi);
        for j in 0..n {
            if p_lo[j] == 0.0 && p_hi[j] == 0.0 {
                continue;
            }
            let col = &self.bd_cols[j * n..(j + 1) * n];
            for i in 0..n {
                let (dl, dh) = linalg::interval_mul((col[i], col[i]), (p_lo[j], p_hi[j]));
                next_lo[i] += dl;
                next_hi[i] += dh;
            }
        }
        lo.copy_from_slice(&next_lo);
        hi.copy_from_slice(&next_hi);
    }
}

/// Key of one cached discretization: the step size plus the network's
/// dynamics fingerprint, both as exact bit patterns — lookups are rare
/// (once per simulator), so exact keys beat hashing and can never alias.
#[derive(Debug)]
struct CacheEntry {
    dt_bits: u64,
    fingerprint: Vec<u64>,
    disc: Arc<Discretization>,
}

/// A shared, immutable-once-built store of [`Discretization`]s.
///
/// The campaign runner hands one cache to every cell, so a sweep over one
/// platform factors the network exactly once however many worker threads
/// run it. Builds happen *while holding the lock*: a concurrent lookup is
/// atomically a hit or a build, which keeps the hit/build counter totals
/// deterministic across worker counts (the determinism goldens compare
/// them).
#[derive(Debug, Default)]
pub struct TransitionCache {
    entries: Mutex<Vec<CacheEntry>>,
    hits: AtomicU64,
    builds: AtomicU64,
}

impl TransitionCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the discretization for `(lti, dt)`, building and caching
    /// it on first use. The boolean is `true` for a cache hit.
    ///
    /// # Errors
    ///
    /// [`ThermalError::SingularNetwork`] from [`Discretization::build`].
    pub fn lookup_or_build(
        &self,
        lti: &ThermalLti,
        dt: f64,
    ) -> Result<(Arc<Discretization>, bool)> {
        let dt_bits = dt.to_bits();
        let fingerprint = lti.fingerprint();
        let mut entries = self.entries.lock().expect("cache mutex is never poisoned");
        if let Some(e) = entries
            .iter()
            .find(|e| e.dt_bits == dt_bits && e.fingerprint == fingerprint)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(&e.disc), true));
        }
        let disc = Arc::new(Discretization::build(lti, dt)?);
        self.builds.fetch_add(1, Ordering::Relaxed);
        entries.push(CacheEntry {
            dt_bits,
            fingerprint,
            disc: Arc::clone(&disc),
        });
        Ok((disc, false))
    }

    /// Total lookups that found an existing discretization.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total discretizations built and inserted.
    #[must_use]
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Number of distinct `(dynamics, dt)` entries currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("cache mutex is never poisoned")
            .len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Memoized per-`dt` state: the discretization plus the pre-computed
/// avoided-substep count, so the steady path repeats neither the cache
/// lookup nor the stability-bound division.
#[derive(Debug, Clone)]
struct StepMemo {
    dt_bits: u64,
    substeps_avoided: u32,
    disc: Arc<Discretization>,
}

/// The exact LTI solver: one cached mat-vec per step.
///
/// Holds an `Arc` to a (possibly shared) [`TransitionCache`] plus a
/// one-entry memo so the steady per-tick path never touches the cache
/// lock, and preallocated scratch so the hot step allocates nothing.
#[derive(Debug)]
pub struct ExactLti {
    cache: Arc<TransitionCache>,
    /// The last step's `dt` resolution. The owning network's dynamics are
    /// fixed after construction, so `dt` alone keys the memo.
    memo: Option<StepMemo>,
    x: Vec<f64>,
    /// Batch-kernel scratch (the `Ad·x` block); empty until the first
    /// `step_batch` call.
    y: Vec<f64>,
}

/// Resolves the discretization for `dt`, preferring the per-solver memo
/// over the shared cache, and records hit/build in `stats`. Shared by
/// the scalar and batch step paths.
fn memoized_disc<'m>(
    cache: &Arc<TransitionCache>,
    memo: &'m mut Option<StepMemo>,
    lti: &ThermalLti,
    dt: Seconds,
    stats: &mut StepStats,
) -> Result<&'m StepMemo> {
    let dt_bits = dt.value().to_bits();
    let stale = match memo {
        Some(m) => m.dt_bits != dt_bits,
        None => true,
    };
    if stale {
        let (disc, hit) = cache.lookup_or_build(lti, dt.value())?;
        stats.cache_hit = hit;
        stats.cache_build = !hit;
        *memo = Some(StepMemo {
            dt_bits,
            substeps_avoided: (lti.euler_substeps(dt.value()).saturating_sub(1)) as u32,
            disc,
        });
    }
    Ok(memo.as_ref().expect("memo just ensured"))
}

impl ExactLti {
    /// A solver with its own private cache.
    #[must_use]
    pub fn new() -> Self {
        Self::with_cache(Arc::new(TransitionCache::new()))
    }

    /// A solver drawing from a shared cache (what the campaign runner
    /// wires through every cell).
    #[must_use]
    pub fn with_cache(cache: Arc<TransitionCache>) -> Self {
        Self {
            cache,
            memo: None,
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Devices per cache block in the batch kernel: the working set of
    /// one block (`2 · nodes · BLOCK` doubles of scratch plus the
    /// temperature and power rows it touches) stays inside L1 for any
    /// realistic node count, so the multi-RHS pass streams `Ad` once per
    /// block instead of once per device.
    const BLOCK: usize = 256;
}

impl Default for ExactLti {
    fn default() -> Self {
        Self::new()
    }
}

impl ThermalSolver for ExactLti {
    fn name(&self) -> &'static str {
        SolverKind::ExactLti.name()
    }

    fn step(
        &mut self,
        lti: &ThermalLti,
        temperatures: &mut [Kelvin],
        dt: Seconds,
        powers: &[Watts],
    ) -> Result<StepStats> {
        let Self { cache, memo, x, .. } = self;
        let mut stats = StepStats {
            substeps: 1,
            ..StepStats::default()
        };
        let m = memoized_disc(cache, memo, lti, dt, &mut stats)?;
        stats.substeps_avoided = m.substeps_avoided;
        let disc = &*m.disc;
        let n = temperatures.len();
        let t_amb = lti.ambient.value();
        x.clear();
        x.extend(temperatures.iter().map(|t| t.value() - t_amb));
        for (i, t) in temperatures.iter_mut().enumerate() {
            let ad_row = &disc.ad[i * n..(i + 1) * n];
            let mut acc = 0.0;
            for (a, xv) in ad_row.iter().zip(x.iter()) {
                acc += a * xv;
            }
            *t = Kelvin::new(acc + t_amb);
        }
        // Bd is column-major: each powered node scatters one column, so
        // unpowered nodes (the common case) cost nothing.
        for (j, p) in powers.iter().enumerate() {
            let pv = p.value();
            if pv != 0.0 {
                let col = &disc.bd_cols[j * n..(j + 1) * n];
                for (t, b) in temperatures.iter_mut().zip(col) {
                    *t = Kelvin::new(t.value() + b * pv);
                }
            }
        }
        Ok(stats)
    }

    /// The multi-RHS batch kernel: one cache-blocked mat-mat against the
    /// shared `(Ad, Bd)` advances every device at once.
    ///
    /// Bit-identity with the scalar path is structural, not approximate:
    /// for each `(node, device)` output the `Ad` accumulation runs over
    /// `k` in ascending order with no zero-skip (exactly the scalar
    /// mat-vec's addition sequence), the ambient is added after the full
    /// accumulation, and the `Bd` scatter visits power nodes `j` in
    /// ascending order with the scalar path's per-value `!= 0.0` skip.
    /// Blocking over the device axis never reorders any per-device
    /// operation, so `N = 1` reproduces [`ThermalSolver::step`] bit for
    /// bit and each device of an `N`-batch matches its own scalar run.
    fn step_batch(
        &mut self,
        lti: &ThermalLti,
        fleet: &mut FleetState,
        dt: Seconds,
    ) -> Result<StepStats> {
        let Self { cache, memo, x, y } = self;
        let mut stats = StepStats {
            substeps: 1,
            ..StepStats::default()
        };
        let m = memoized_disc(cache, memo, lti, dt, &mut stats)?;
        stats.substeps_avoided = m.substeps_avoided;
        let disc = &*m.disc;
        let n = fleet.nodes();
        debug_assert_eq!(n, disc.n);
        let nd = fleet.devices();
        let (temps, power_in, amb) = fleet.planes_mut();
        x.resize(n * Self::BLOCK, 0.0);
        y.resize(n * Self::BLOCK, 0.0);
        let mut d0 = 0;
        while d0 < nd {
            let bw = Self::BLOCK.min(nd - d0);
            let amb_blk = &amb[d0..d0 + bw];
            // Deviation coordinates for the block: x[k][c] = T − T_amb(d).
            for k in 0..n {
                let t_row = &temps[k * nd + d0..k * nd + d0 + bw];
                let x_row = &mut x[k * bw..(k + 1) * bw];
                for ((xv, t), a) in x_row.iter_mut().zip(t_row).zip(amb_blk) {
                    *xv = t - a;
                }
            }
            // y = Ad·x, accumulating over k in ascending order per output
            // (the scalar mat-vec's exact addition sequence).
            y[..n * bw].fill(0.0);
            for i in 0..n {
                let y_row = &mut y[i * bw..(i + 1) * bw];
                for k in 0..n {
                    let a = disc.ad[i * n + k];
                    let x_row = &x[k * bw..(k + 1) * bw];
                    for (yv, xv) in y_row.iter_mut().zip(x_row) {
                        *yv += a * xv;
                    }
                }
            }
            // Back to absolute temperatures.
            for i in 0..n {
                let t_row = &mut temps[i * nd + d0..i * nd + d0 + bw];
                let y_row = &y[i * bw..(i + 1) * bw];
                for ((t, yv), a) in t_row.iter_mut().zip(y_row).zip(amb_blk) {
                    *t = yv + a;
                }
            }
            // Bd scatter, column-major like the scalar path: powered
            // nodes j in ascending order, per-device zero-skip.
            for j in 0..n {
                let p_start = j * nd + d0;
                for i in 0..n {
                    let b = disc.bd_cols[j * n + i];
                    let t_start = i * nd + d0;
                    for c in 0..bw {
                        let pv = power_in[p_start + c];
                        if pv != 0.0 {
                            temps[t_start + c] += b * pv;
                        }
                    }
                }
            }
            d0 += bw;
        }
        Ok(stats)
    }

    fn box_clone(&self) -> Box<dyn ThermalSolver> {
        Box::new(Self {
            cache: Arc::clone(&self.cache),
            memo: self.memo.clone(),
            x: Vec::new(),
            y: Vec::new(),
        })
    }
}

/// Which solver steps a network — the configuration surface used by the
/// sim builder, scenario JSON (`"solver": ...`) and the `--solver` CLI
/// flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// The reference explicit integrator.
    ForwardEuler,
    /// Exact discretization with cached transition matrices (default).
    #[default]
    ExactLti,
}

impl SolverKind {
    /// Every kind, in declaration order.
    pub const ALL: [SolverKind; 2] = [SolverKind::ForwardEuler, SolverKind::ExactLti];

    /// The kind's stable snake_case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::ForwardEuler => "forward_euler",
            SolverKind::ExactLti => "exact_lti",
        }
    }

    /// Constructs the solver, drawing exact-LTI discretizations from
    /// `cache` when one is supplied (otherwise a private cache).
    #[must_use]
    pub fn build(self, cache: Option<Arc<TransitionCache>>) -> Box<dyn ThermalSolver> {
        match self {
            SolverKind::ForwardEuler => Box::new(ForwardEuler),
            SolverKind::ExactLti => Box::new(match cache {
                Some(cache) => ExactLti::with_cache(cache),
                None => ExactLti::new(),
            }),
        }
    }
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SolverKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        SolverKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown solver {s:?} (valid: {})",
                    SolverKind::ALL.map(SolverKind::name).join(", ")
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpt_soc::platforms;

    fn odroid_lti() -> ThermalLti {
        platforms::exynos_5422().thermal_spec().lti().unwrap()
    }

    #[test]
    fn solver_kind_round_trips_names() {
        for kind in SolverKind::ALL {
            assert_eq!(kind.name().parse::<SolverKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        let err = "rk4".parse::<SolverKind>().unwrap_err();
        assert!(err.contains("forward_euler") && err.contains("exact_lti"));
        assert_eq!(SolverKind::default(), SolverKind::ExactLti);
    }

    #[test]
    fn exact_step_matches_steady_state_at_convergence() {
        let lti = odroid_lti();
        let mut solver = ExactLti::new();
        let mut temps = vec![lti.ambient; lti.len()];
        let mut powers = vec![Watts::ZERO; lti.len()];
        powers[1] = Watts::new(2.0);
        for _ in 0..40 {
            solver
                .step(&lti, &mut temps, Seconds::new(60.0), &powers)
                .unwrap();
        }
        // 2400 s ≫ every time constant: must sit on the steady state
        // G·(T − T_amb) = P to near machine precision.
        let n = lti.len();
        for (i, p) in powers.iter().enumerate() {
            let outflow: f64 = (0..n)
                .map(|j| lti.g_full[i][j] * (temps[j].value() - lti.ambient.value()))
                .sum();
            assert!(
                (outflow - p.value()).abs() < 1e-9,
                "node {i}: outflow {outflow}"
            );
        }
    }

    #[test]
    fn interval_step_contains_every_concrete_trajectory() {
        // Step the concrete exact-LTI recursion with a power sequence that
        // wanders inside [0, 3] W on two nodes; the interval envelope fed
        // the same discretization and the bracketing power interval must
        // contain the concrete state at every tick.
        let lti = odroid_lti();
        let n = lti.len();
        let disc = Discretization::build(&lti, 0.01).unwrap();
        let mut solver = ExactLti::new();
        let mut temps = vec![lti.ambient; n];
        let mut lo = vec![0.0; n];
        let mut hi = vec![0.0; n];
        let p_lo = vec![0.0; n];
        let mut p_hi = vec![0.0; n];
        p_hi[1] = 3.0;
        p_hi[2] = 3.0;
        let mut powers = vec![Watts::ZERO; n];
        for k in 0..500u32 {
            // A deterministic pseudo-random walk inside the interval.
            powers[1] = Watts::new(1.5 + 1.5 * f64::from(k).sin());
            powers[2] = Watts::new(1.5 - 1.5 * (0.7 * f64::from(k)).cos());
            solver
                .step(&lti, &mut temps, Seconds::new(0.01), &powers)
                .unwrap();
            disc.step_interval(&mut lo, &mut hi, &p_lo, &p_hi);
            for i in 0..n {
                let dev = temps[i].value() - lti.ambient.value();
                assert!(
                    lo[i] <= dev && dev <= hi[i],
                    "tick {k} node {i}: {dev} outside [{}, {}]",
                    lo[i],
                    hi[i]
                );
            }
        }
    }

    #[test]
    fn exact_step_is_invariant_to_substep_count() {
        // Exactness: one 10 s step equals ten 1 s steps to fp accuracy.
        let lti = odroid_lti();
        let mut powers = vec![Watts::ZERO; lti.len()];
        powers[2] = Watts::new(1.5);
        let mut one = ExactLti::new();
        let mut many = ExactLti::new();
        let mut t_one = vec![lti.ambient; lti.len()];
        let mut t_many = vec![lti.ambient; lti.len()];
        one.step(&lti, &mut t_one, Seconds::new(10.0), &powers)
            .unwrap();
        for _ in 0..10 {
            many.step(&lti, &mut t_many, Seconds::new(1.0), &powers)
                .unwrap();
        }
        for (a, b) in t_one.iter().zip(&t_many) {
            assert!((a.value() - b.value()).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn cache_is_shared_and_counts_hits() {
        let lti = odroid_lti();
        let cache = Arc::new(TransitionCache::new());
        let dt = Seconds::from_millis(100.0);
        let powers = vec![Watts::ZERO; lti.len()];
        let mut stats = Vec::new();
        for _ in 0..3 {
            let mut solver = ExactLti::with_cache(Arc::clone(&cache));
            let mut temps = vec![lti.ambient; lti.len()];
            stats.push(solver.step(&lti, &mut temps, dt, &powers).unwrap());
            // Second step of the same solver memo-hits: no cache access.
            let memo = solver.step(&lti, &mut temps, dt, &powers).unwrap();
            assert!(!memo.cache_hit && !memo.cache_build);
        }
        assert!(stats[0].cache_build && !stats[0].cache_hit);
        assert!(stats[1].cache_hit && !stats[1].cache_build);
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 1);
        // A different dt is a distinct entry.
        let mut solver = ExactLti::with_cache(Arc::clone(&cache));
        let mut temps = vec![lti.ambient; lti.len()];
        solver
            .step(&lti, &mut temps, Seconds::from_millis(10.0), &powers)
            .unwrap();
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn substeps_avoided_reflects_euler_bound() {
        let lti = odroid_lti();
        let mut solver = ExactLti::new();
        let mut temps = vec![lti.ambient; lti.len()];
        let powers = vec![Watts::ZERO; lti.len()];
        let stats = solver
            .step(&lti, &mut temps, Seconds::new(10.0), &powers)
            .unwrap();
        assert_eq!(stats.substeps, 1);
        assert_eq!(
            stats.substeps_avoided as usize,
            lti.euler_substeps(10.0) - 1
        );
        assert!(stats.substeps_avoided >= 1, "10 s is beyond one Euler step");
    }

    #[test]
    fn box_clone_preserves_behaviour() {
        let lti = odroid_lti();
        let mut powers = vec![Watts::ZERO; lti.len()];
        powers[1] = Watts::new(3.0);
        let mut original: Box<dyn ThermalSolver> = Box::new(ExactLti::new());
        let mut temps_a = vec![lti.ambient; lti.len()];
        original
            .step(&lti, &mut temps_a, Seconds::new(0.1), &powers)
            .unwrap();
        let mut cloned = original.clone();
        let mut temps_b = temps_a.clone();
        original
            .step(&lti, &mut temps_a, Seconds::new(0.1), &powers)
            .unwrap();
        cloned
            .step(&lti, &mut temps_b, Seconds::new(0.1), &powers)
            .unwrap();
        assert_eq!(temps_a, temps_b);
        assert_eq!(original.name(), "exact_lti");
    }
}
