//! Structure-of-arrays state for batched fleet simulation.
//!
//! A fleet is N devices sharing one platform model (one `ThermalLti`,
//! one cached `(Ad, Bd)` discretization) but each carrying its own
//! temperatures, injected powers and ambient. Because the discretized
//! state jump `x' = Ad·x + Bd·u` is linear in the device axis, stepping
//! N devices is one multi-RHS mat-mat against the shared transition
//! matrices instead of N mat-vecs — see
//! [`ThermalSolver::step_batch`](crate::ThermalSolver::step_batch).
//!
//! # Layout
//!
//! Both planes are **node-major**: `temps[node * devices + device]`.
//! The device axis is innermost and contiguous, so the batch kernel's
//! inner loops stream linearly through memory and vectorize; the
//! per-device spread (ambient, leakage, workload phase) enters only on
//! the input side, never the shared matrices.
//!
//! ```text
//!              device →  d0   d1   d2   ...   dN-1
//!   temps  node 0      [ T00  T01  T02  ...  T0,N-1 ]
//!          node 1      [ T10  T11  T12  ...  T1,N-1 ]
//!          ...
//!   power  node 0      [ P00  P01  P02  ...  P0,N-1 ]
//!          ...
//!   ambient (per dev)  [ A0   A1   A2   ...  AN-1   ]
//! ```

use mpt_units::{Kelvin, Watts};

/// Node-major per-device state for a batch of devices sharing one
/// thermal network.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetState {
    nodes: usize,
    devices: usize,
    /// Temperatures in kelvin, `[node * devices + device]`.
    temps: Vec<f64>,
    /// Injected powers in watts, `[node * devices + device]`.
    power_in: Vec<f64>,
    /// Per-device ambient in kelvin.
    ambient_k: Vec<f64>,
}

impl FleetState {
    /// A fleet of `devices` devices over a `nodes`-node network, every
    /// node starting at `initial` and every device at ambient `ambient`.
    #[must_use]
    pub fn new(nodes: usize, devices: usize, initial: Kelvin, ambient: Kelvin) -> Self {
        Self {
            nodes,
            devices,
            temps: vec![initial.value(); nodes * devices],
            power_in: vec![0.0; nodes * devices],
            ambient_k: vec![ambient.value(); devices],
        }
    }

    /// Number of thermal nodes per device.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of devices in the batch.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Temperature of `node` on `device`.
    #[must_use]
    pub fn temp(&self, node: usize, device: usize) -> Kelvin {
        Kelvin::new(self.temps[node * self.devices + device])
    }

    /// Sets the temperature of `node` on `device`.
    pub fn set_temp(&mut self, node: usize, device: usize, t: Kelvin) {
        self.temps[node * self.devices + device] = t.value();
    }

    /// Injected power at `node` on `device`.
    #[must_use]
    pub fn power(&self, node: usize, device: usize) -> Watts {
        Watts::new(self.power_in[node * self.devices + device])
    }

    /// Sets the power injected at `node` on `device` for the next step.
    pub fn set_power(&mut self, node: usize, device: usize, p: Watts) {
        self.power_in[node * self.devices + device] = p.value();
    }

    /// Zeroes the whole power plane (start of a tick's input assembly).
    pub fn clear_power(&mut self) {
        self.power_in.fill(0.0);
    }

    /// Ambient temperature of `device`.
    #[must_use]
    pub fn ambient(&self, device: usize) -> Kelvin {
        Kelvin::new(self.ambient_k[device])
    }

    /// Sets the ambient temperature of `device`. Ambient spread is pure
    /// input-side state: it never touches the shared `(Ad, Bd)` (whose
    /// fingerprint deliberately excludes ambient), it only shifts the
    /// deviation coordinates of this one device.
    pub fn set_ambient(&mut self, device: usize, ambient: Kelvin) {
        self.ambient_k[device] = ambient.value();
    }

    /// The raw node-major temperature plane (`[node * devices + device]`,
    /// kelvin).
    #[must_use]
    pub fn temps_raw(&self) -> &[f64] {
        &self.temps
    }

    /// The raw node-major power plane, mutable (`[node * devices +
    /// device]`, watts) — the fast path for per-tick input assembly.
    pub fn power_raw_mut(&mut self) -> &mut [f64] {
        &mut self.power_in
    }

    /// The per-device ambient vector (kelvin).
    #[must_use]
    pub fn ambient_raw(&self) -> &[f64] {
        &self.ambient_k
    }

    /// Splits mutable temperature plane and shared ambient vector for
    /// the solver kernel.
    pub(crate) fn planes_mut(&mut self) -> (&mut [f64], &[f64], &[f64]) {
        (&mut self.temps, &self.power_in, &self.ambient_k)
    }

    /// Copies device `device`'s temperatures into `out` (resized to the
    /// node count) — the bridge back to scalar per-device views.
    pub fn device_temps_into(&self, device: usize, out: &mut Vec<Kelvin>) {
        out.clear();
        out.extend((0..self.nodes).map(|node| self.temp(node, device)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_node_major() {
        let mut f = FleetState::new(2, 3, Kelvin::new(300.0), Kelvin::new(298.0));
        f.set_temp(1, 2, Kelvin::new(310.0));
        // Node-major: node 1's plane starts at nodes * devices = 3.
        assert_eq!(f.temps_raw()[3 + 2], 310.0);
        f.set_power(0, 1, Watts::new(2.5));
        assert_eq!(f.power(0, 1), Watts::new(2.5));
        f.clear_power();
        assert_eq!(f.power(0, 1), Watts::ZERO);
    }

    #[test]
    fn per_device_ambient_is_independent() {
        let mut f = FleetState::new(1, 2, Kelvin::new(300.0), Kelvin::new(298.0));
        f.set_ambient(1, Kelvin::new(305.0));
        assert_eq!(f.ambient(0), Kelvin::new(298.0));
        assert_eq!(f.ambient(1), Kelvin::new(305.0));
    }

    #[test]
    fn device_temps_round_trip() {
        let mut f = FleetState::new(3, 2, Kelvin::new(300.0), Kelvin::new(298.0));
        f.set_temp(0, 1, Kelvin::new(301.0));
        f.set_temp(2, 1, Kelvin::new(303.0));
        let mut out = Vec::new();
        f.device_temps_into(1, &mut out);
        assert_eq!(
            out,
            vec![Kelvin::new(301.0), Kelvin::new(300.0), Kelvin::new(303.0)]
        );
    }
}
