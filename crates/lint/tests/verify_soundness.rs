//! Soundness pins for the MPT6xx static reachability certifier: every
//! trajectory the simulator can actually produce — single devices on
//! both platforms, both stepping engines, both solvers, and jittered
//! fleet populations — must lie inside the certified temperature
//! envelope at every base-tick sample. Plus the acceptance verdicts on
//! the shipped Nexus scenarios, byte-pinned campaign verification
//! goldens (regenerate with `MPT_UPDATE_GOLDENS=1`), the MPT604
//! limit-cycle trigger, and a release-mode speed pin for the campaign
//! pre-gate.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

use proptest::prelude::*;

use mpt_core::scenario::{
    build_scenario, CampaignSpec, EngineSpec, ScenarioSpec, SolverSpec, ThermalPolicySpec,
};
use mpt_lint::verify::{verify_campaign, verify_cell, verify_scenario, Envelope, BASE_DT_S};
use mpt_soc::{DeviceParams, FleetSpec, ThermalLti};
use mpt_thermal::{ExactLti, FleetState, ThermalSolver};
use mpt_units::{Celsius, Kelvin, Seconds};
use mpt_workloads::{FleetInputs, PowerTrace};

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn load_scenario(name: &str) -> ScenarioSpec {
    let json = std::fs::read_to_string(scenarios_dir().join(name)).expect("readable scenario");
    serde_json::from_str(&json).expect("scenario parses")
}

fn load_campaign(name: &str) -> CampaignSpec {
    let json = std::fs::read_to_string(scenarios_dir().join(name)).expect("readable campaign");
    serde_json::from_str(&json).expect("campaign parses")
}

/// The four shipped single-scenario specs: both platforms (Exynos 5422
/// and the Nexus MPT6xx models), throttled and unthrottled policies.
const SHIPPED_SCENARIOS: [&str; 4] = [
    "nexus_throttled_game.json",
    "nexus_unthrottled_game.json",
    "odroid_default_ipa.json",
    "odroid_proposed.json",
];

// ---------------------------------------------------------------------
// Acceptance verdicts
// ---------------------------------------------------------------------

#[test]
fn throttled_game_gets_a_possible_trip_warning() {
    let spec = load_scenario("nexus_throttled_game.json");
    let v = verify_scenario(&spec, "nexus_throttled_game.json").expect("verifies");
    assert_eq!(v.summary.verdict, "MPT602", "{}", v.report.render_text());
    assert!(
        v.summary.first_straddle_s.is_some(),
        "a straddle verdict names the first possible crossing"
    );
    assert!(
        v.summary.first_guaranteed_s.is_none(),
        "a trip is possible, not guaranteed"
    );
    assert_eq!(v.report.warnings(), 1);
    assert_eq!(v.report.errors(), 0);
}

#[test]
fn unthrottled_game_earns_a_no_trip_certificate() {
    let spec = load_scenario("nexus_unthrottled_game.json");
    let v = verify_scenario(&spec, "nexus_unthrottled_game.json").expect("verifies");
    assert_eq!(v.summary.verdict, "MPT601", "{}", v.report.render_text());
    assert_eq!(v.report.errors() + v.report.warnings(), 0);
    assert_eq!(v.report.infos(), 1);
    let budget = v.summary.sustained_budget_w.expect("budget resolves");
    assert!(budget > 0.0, "headroom exists below the sanity cap");
}

// ---------------------------------------------------------------------
// Single-device containment: both platforms, both engines, both solvers
// ---------------------------------------------------------------------

/// Steps the simulator a spec describes to completion and asserts every
/// node temperature lies inside the certified envelope at every sample
/// that lands on the base-tick grid.
fn assert_contained(spec: &ScenarioSpec, label: &str, slop_c: f64) {
    let v = verify_scenario(spec, label).expect("verifies");
    let env = &v.envelope;
    assert!(
        env.truncated_at_s.is_none(),
        "{label}: shipped scenarios stay under the leakage cap"
    );
    let (mut sim, _) = build_scenario(spec).expect("builds");
    let n = env.nodes();
    assert_eq!(sim.network().temperatures().len(), n, "{label}: node count");
    let mut checked = 0usize;
    let check_sample = |sim: &mpt_sim::Simulator, sample: usize| {
        for node in 0..n {
            let t = sim.network().temperatures()[node].to_celsius().value();
            let lo = env.lower_c(sample, node);
            let hi = env.upper_c(sample, node);
            assert!(
                t >= lo - slop_c && t <= hi + slop_c,
                "{label}: node {} = {t:.4} C escapes [{lo:.4}, {hi:.4}] at sample {sample} \
                 (t = {:.2} s)",
                env.node_names[node],
                sample as f64 * BASE_DT_S
            );
        }
    };
    check_sample(&sim, 0);
    while sim.time().value() < spec.duration_s - 1e-9 {
        sim.step().expect("steps");
        let t_s = sim.time().value();
        let sample = (t_s / BASE_DT_S).round() as usize;
        if (t_s - sample as f64 * BASE_DT_S).abs() > 1e-6 || sample >= env.samples() {
            continue;
        }
        check_sample(&sim, sample);
        checked += 1;
    }
    assert!(checked >= 100, "{label}: only {checked} samples checked");
}

/// The engine/solver grid the containment sweep runs each scenario
/// under. Forward Euler under event stepping is rejected by the builder
/// (and MPT-linted), so that combination is omitted. The exact solver is
/// held to tight float slop; Euler gets the documented ~0.1 °C
/// integration deviation the certifier's 1 °C margin absorbs.
const VARIANTS: [(SolverSpec, EngineSpec, f64); 3] = [
    (SolverSpec::ExactLti, EngineSpec::Fixed, 1e-3),
    (SolverSpec::ExactLti, EngineSpec::Event, 1e-3),
    (SolverSpec::ForwardEuler, EngineSpec::Fixed, 0.15),
];

#[test]
fn simulated_trajectories_stay_inside_the_certified_envelope() {
    for name in SHIPPED_SCENARIOS {
        let mut spec = load_scenario(name);
        // Three simulated seconds pin the transient (heat-up) regime the
        // envelope must bracket; the long-run steady state is strictly
        // easier and covered by the acceptance verdicts above.
        spec.duration_s = spec.duration_s.min(3.0);
        for (solver, engine, slop_c) in VARIANTS {
            spec.solver = solver;
            spec.engine = engine;
            let label = format!("{name}[{solver:?}/{engine:?}]");
            assert_contained(&spec, &label, slop_c);
        }
    }
}

// ---------------------------------------------------------------------
// Fleet containment: the widened envelope vs jittered replay
// ---------------------------------------------------------------------

struct FleetFixture {
    lti: ThermalLti,
    trace: PowerTrace,
    fleet: FleetSpec,
    env: Envelope,
    initial_temperature_c: Option<f64>,
}

/// Captures the canonical power trace and the fleet-widened envelope for
/// the shipped launch campaign's base cell, once, shared across proptest
/// cases (the draw under test is the device jitter, not the trace).
fn fleet_fixture() -> &'static FleetFixture {
    static FIXTURE: OnceLock<FleetFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut spec = load_campaign("nexus_fleet_launch.campaign.json");
        spec.base.duration_s = 2.0;
        let fleet = spec.fleet.clone().expect("launch campaign has a fleet");
        // The fleet runner forces fixed-dt stepping for the canonical
        // run so the trace sits on the uniform base grid; mirror it.
        let mut canonical = spec.base.clone();
        canonical.engine = EngineSpec::Fixed;
        let (mut sim, _) = build_scenario(&canonical).expect("builds");
        sim.enable_power_trace();
        sim.run_for(Seconds::new(canonical.duration_s))
            .expect("runs");
        let trace = sim.take_power_trace().expect("trace captured");
        let v = verify_cell(&spec.base, Some(&fleet), "fleet-fixture").expect("verifies");
        let lti = spec
            .base
            .platform
            .build()
            .thermal_spec()
            .lti()
            .expect("fleet platform has an LTI form");
        FleetFixture {
            lti,
            trace,
            fleet,
            env: v.envelope,
            initial_temperature_c: spec.base.initial_temperature_c,
        }
    })
}

/// Replays `devices` jittered devices exactly as `replay_fleet` does and
/// asserts every node of every device sits inside the widened envelope
/// at every tick.
fn assert_fleet_contained(seed: u64, devices: usize) -> Result<(), String> {
    let fx = fleet_fixture();
    let nodes = fx.lti.len();
    let params: Vec<DeviceParams> = (0..devices)
        .map(|d| fx.fleet.device_params(seed, d))
        .collect();
    let mut state = FleetState::new(nodes, devices, fx.lti.ambient, fx.lti.ambient);
    for (d, p) in params.iter().enumerate() {
        let ambient = Kelvin::new(fx.lti.ambient.value() + p.ambient_offset_c);
        state.set_ambient(d, ambient);
        let initial = fx
            .initial_temperature_c
            .map_or(ambient, |t0| Celsius::new(t0).to_kelvin());
        for node in 0..nodes {
            state.set_temp(node, d, initial);
        }
    }
    for node in 0..nodes {
        let lo = fx.env.lower_c(0, node);
        let hi = fx.env.upper_c(0, node);
        for d in 0..devices {
            let t = state.temp(node, d).to_celsius().value();
            prop_assert!(
                t >= lo - 1e-9 && t <= hi + 1e-9,
                "seed {seed} device {d} node {node}: initial {t} outside [{lo}, {hi}]"
            );
        }
    }
    let inputs = FleetInputs::new(fx.trace.clone(), &params);
    let mut solver = ExactLti::new();
    let dt = Seconds::new(fx.trace.dt_s());
    let ticks = fx.trace.ticks().min(fx.env.samples().saturating_sub(1));
    prop_assert!(ticks >= 100, "the replay covers a real transient");
    for tick in 0..ticks {
        inputs.fill_tick(tick, state.power_raw_mut());
        solver
            .step_batch(&fx.lti, &mut state, dt)
            .expect("batch step");
        let sample = tick + 1;
        for node in 0..nodes {
            let lo = fx.env.lower_c(sample, node);
            let hi = fx.env.upper_c(sample, node);
            for (d, p) in params.iter().enumerate().take(devices) {
                let t = state.temp(node, d).to_celsius().value();
                prop_assert!(
                    t >= lo - 1e-6 && t <= hi + 1e-6,
                    "seed {seed} device {d} node {} = {t:.4} C escapes [{lo:.4}, {hi:.4}] \
                     at t = {:.2} s (leak {:.3}, mix {:.3}, phase {:.3}, amb {:+.2})",
                    fx.env.node_names[node],
                    sample as f64 * BASE_DT_S,
                    p.leakage_scale,
                    p.workload_mix,
                    p.phase_offset_s,
                    p.ambient_offset_c
                );
            }
        }
    }
    Ok(())
}

proptest! {
    // 12 cases x 10 devices = 120 independent jitter draws, every one
    // checked at every node and every base-tick sample.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fleet_replays_stay_inside_the_widened_envelope(seed in 0u64..u64::MAX) {
        assert_fleet_contained(seed, 10)?;
    }
}

// ---------------------------------------------------------------------
// Campaign verification goldens
// ---------------------------------------------------------------------

fn check_verify_golden(name: &str) {
    let spec = load_campaign(name);
    let (report, cells) = verify_campaign(&spec, name).expect("campaign verifies");
    let mut artifact = report.render_text();
    artifact.push('\n');
    artifact.push_str(&serde_json::to_string_pretty(&cells).expect("serializes"));
    artifact.push('\n');
    let golden_path = goldens_dir().join(format!(
        "{}.verify.txt",
        name.trim_end_matches(".campaign.json")
    ));
    if std::env::var_os("MPT_UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(goldens_dir()).expect("goldens dir");
        std::fs::write(&golden_path, &artifact).expect("golden written");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} — run with MPT_UPDATE_GOLDENS=1 to (re)generate",
            golden_path.display()
        )
    });
    assert_eq!(
        artifact,
        golden,
        "{name}: verification drifted from {}",
        golden_path.display()
    );
}

#[test]
fn nexus_trip_sweep_verification_matches_golden() {
    check_verify_golden("nexus_trip_sweep.campaign.json");
}

#[test]
fn odroid_policy_sweep_verification_matches_golden() {
    check_verify_golden("odroid_policy_sweep.campaign.json");
}

// ---------------------------------------------------------------------
// MPT604: a trip inside the cooling ladder provably limit-cycles
// ---------------------------------------------------------------------

#[test]
fn a_trip_between_cooling_levels_flags_a_limit_cycle() {
    let mut spec = load_scenario("nexus_throttled_game.json");
    // MPT604 is a steady-state property; the envelope length is noise.
    spec.duration_s = 0.5;
    let mut hit = None;
    let mut trip = 30.0;
    while trip <= 120.0 {
        spec.thermal = ThermalPolicySpec::StepWise {
            trips_c: vec![trip],
            period_s: 1.0,
        };
        let v = verify_scenario(&spec, "trip-sweep").expect("verifies");
        if v.summary.limit_cycle {
            assert!(
                v.report.render_text().contains("MPT604"),
                "the summary flag and the diagnostic agree"
            );
            hit = Some(trip);
            break;
        }
        trip += 0.25;
    }
    assert!(
        hit.is_some(),
        "some trip inside the cooling ladder's steady-state gaps must cycle"
    );
    // And the shipped trip (41 C, below every level's steady state) must
    // NOT be flagged: the governor saturates instead of oscillating.
    let shipped = load_scenario("nexus_throttled_game.json");
    let v = verify_scenario(&shipped, "shipped").expect("verifies");
    assert!(!v.summary.limit_cycle, "{}", v.report.render_text());
}

// ---------------------------------------------------------------------
// Speed: the campaign pre-gate must stay interactive
// ---------------------------------------------------------------------

#[test]
fn full_campaign_verification_is_fast() {
    let campaigns = [
        "nexus_trip_sweep.campaign.json",
        "odroid_policy_sweep.campaign.json",
        "nexus_fleet_launch.campaign.json",
    ];
    let start = Instant::now();
    let mut cells_total = 0;
    for name in campaigns {
        let spec = load_campaign(name);
        let (_, cells) = verify_campaign(&spec, name).expect("campaign verifies");
        cells_total += cells.len();
    }
    let elapsed = start.elapsed();
    assert!(cells_total >= 30, "the sweep covered all shipped cells");
    // The acceptance bound (< 1 s on one core) only holds for optimized
    // builds; debug builds just exercise the path.
    if !cfg!(debug_assertions) {
        assert!(
            elapsed < std::time::Duration::from_secs(1),
            "verifying every shipped campaign took {elapsed:?}"
        );
    }
}
