//! Property test for the Hurwitz check (MPT008): both builtin platforms
//! pass, and corrupting any single coupling to a sufficiently negative
//! conductance flips the verdict.
//!
//! The negative magnitude is chosen as (total coupling + total ambient
//! conductance + 1), which forces a negative diagonal in the symmetrized
//! matrix `S` — and `λ_min(S)` is bounded above by the smallest diagonal
//! entry, so the spectrum must go negative.

use mpt_lint::model::{assemble_g_full, hurwitz_margin, BUILTINS};
use proptest::prelude::*;

/// `(heat capacities, couplings, ambient conductances)` of a builtin.
type NetworkParts = (Vec<f64>, Vec<(usize, usize, f64)>, Vec<f64>);

fn network_parts(builtin: usize) -> NetworkParts {
    let platform = BUILTINS[builtin].1();
    let ts = platform.thermal_spec();
    (
        ts.nodes.iter().map(|n| n.heat_capacity).collect(),
        ts.couplings
            .iter()
            .map(|c| (c.a, c.b, c.conductance))
            .collect(),
        ts.nodes.iter().map(|n| n.ambient_conductance).collect(),
    )
}

#[test]
fn both_builtin_platforms_are_hurwitz() {
    for (name, build) in BUILTINS {
        let platform = build();
        let ts = platform.thermal_spec();
        let caps: Vec<f64> = ts.nodes.iter().map(|n| n.heat_capacity).collect();
        let couplings: Vec<(usize, usize, f64)> = ts
            .couplings
            .iter()
            .map(|c| (c.a, c.b, c.conductance))
            .collect();
        let ambient: Vec<f64> = ts.nodes.iter().map(|n| n.ambient_conductance).collect();
        let g_full = assemble_g_full(caps.len(), &couplings, &ambient);
        let margin = hurwitz_margin(&caps, &g_full);
        assert!(margin > 0.0, "{name}: slowest mode {margin} must decay");
    }
}

proptest! {
    #[test]
    fn negating_any_coupling_flips_the_verdict(builtin in 0usize..2, pick in 0usize..64) {
        let (caps, mut couplings, ambient) = network_parts(builtin);
        prop_assert!(!couplings.is_empty(), "builtins couple every node");
        let k = pick % couplings.len();

        let healthy = hurwitz_margin(&caps, &assemble_g_full(caps.len(), &couplings, &ambient));
        prop_assert!(healthy > 0.0, "builtin {builtin} starts Hurwitz");

        let total: f64 = couplings.iter().map(|&(_, _, g)| g).sum::<f64>()
            + ambient.iter().sum::<f64>();
        couplings[k].2 = -(total + 1.0);
        let corrupted = hurwitz_margin(&caps, &assemble_g_full(caps.len(), &couplings, &ambient));
        prop_assert!(
            corrupted < 0.0,
            "builtin {builtin}, coupling {k}: margin {corrupted} must flip negative"
        );
    }
}
