//! Snapshot tests over `scenarios/invalid/`: every fixture fires its
//! documented code exactly once, with no collateral diagnostics, and the
//! `mpt_lint` binary turns that into a non-zero exit.

use std::path::PathBuf;
use std::process::Command;

use mpt_lint::{check_file, diag::Code};

/// `(fixture file, the one code it must fire)`.
const EXPECTED: [(&str, Code); 10] = [
    ("asymmetric_g.model.json", Code::InvalidConductance),
    ("non_monotonic_opp.model.json", Code::OppVoltageMonotonicity),
    ("dangling_sensor.json", Code::DanglingControlSensor),
    ("unknown_solver.json", Code::UnknownSolver),
    ("event_engine_forward_euler.json", Code::InvalidEngine),
    ("phased_nonmonotonic.json", Code::NonMonotonicPhases),
    (
        "query_unknown_channel.campaign.json",
        Code::QueryUnknownChannel,
    ),
    ("query_non_axis_key.campaign.json", Code::QueryNonAxisKey),
    ("fleet_zero_devices.campaign.json", Code::InvalidFleet),
    (
        "fleet_nonphysical_jitter.campaign.json",
        Code::NonPhysicalFleetJitter,
    ),
];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn every_invalid_fixture_fires_its_code_exactly_once() {
    for (name, code) in EXPECTED {
        let path = workspace_root().join("scenarios/invalid").join(name);
        let report = check_file(&path).expect("fixture readable");
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code.code()).collect();
        assert_eq!(
            codes,
            vec![code.code()],
            "{name} must fire {} exactly once and nothing else:\n{}",
            code.code(),
            report.render_text()
        );
        assert_eq!(report.exit_code(false), 1, "{name} must fail the lint");
    }
}

#[test]
fn binary_fails_each_fixture_with_its_code_in_json_output() {
    for (name, code) in EXPECTED {
        let path = workspace_root().join("scenarios/invalid").join(name);
        let flag = if name.ends_with(".model.json") {
            "--platform"
        } else if name.ends_with(".campaign.json") {
            "--campaign"
        } else {
            "--scenario"
        };
        let out = Command::new(env!("CARGO_BIN_EXE_mpt_lint"))
            .args([flag, path.to_str().expect("utf-8 path"), "--format", "json"])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(1), "{name} must exit 1");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(code.code()),
            "{name}: JSON output must name {}:\n{stdout}",
            code.code()
        );
    }
}

#[test]
fn binary_all_passes_on_the_shipped_workspace() {
    let root = workspace_root();
    let out = Command::new(env!("CARGO_BIN_EXE_mpt_lint"))
        .args([
            "--all",
            "--root",
            root.to_str().expect("utf-8 path"),
            "--format",
            "json",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "--all must pass on the shipped tree:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("\"errors\": 0"), "{stdout}");
}

#[test]
fn binary_usage_errors_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_mpt_lint"))
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "no work requested is a usage error"
    );
    let out = Command::new(env!("CARGO_BIN_EXE_mpt_lint"))
        .args(["--scenario", "does-not-exist.json"])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "unreadable input is an I/O error"
    );
}
