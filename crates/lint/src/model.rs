//! Model analysis: platforms, OPP tables and thermal networks (MPT0xx).
//!
//! Platform descriptions reach the simulator through two doors: the
//! curated builders in `mpt_soc::platforms` (which validate), and serde —
//! whose derived `Deserialize` fills private fields directly and bypasses
//! every builder invariant. This module re-establishes those invariants
//! for *any* platform, however it was constructed, and then goes further
//! than the builders do: it proves the assembled thermal A-matrix is
//! Hurwitz and classifies the power–temperature fixed point at the
//! max-power and idle operating points, reusing `mpt_thermal`'s linear
//! algebra and lumped stability analysis.
//!
//! Checks within one platform are ordered most-fundamental-first and
//! later checks are gated on earlier ones passing: an OPP table with
//! out-of-order frequencies gets MPT001 only (its voltage and power
//! columns are meaningless until the order is fixed), and the Hurwitz /
//! fixed-point analyses only run on a structurally valid network. Each
//! root cause therefore produces exactly one diagnostic.

use mpt_soc::{platforms, Platform, ThermalSpec};
use mpt_thermal::{linalg, RcNetwork, Stability};
use mpt_units::Watts;
use serde::Deserialize;

use crate::diag::{Code, Diagnostic, Report, Severity};

/// Hottest-plausible sensor reading; trip points and alert thresholds
/// beyond this are configuration mistakes, not design points.
pub const MAX_SANE_TEMP_C: f64 = 125.0;

/// A standalone thermal network given as raw matrices — the third form a
/// `*.model.json` file can take (alongside `builtin` and `platform`).
/// Unlike [`ThermalSpec`], the conductance matrix is written out in full,
/// so asymmetric inputs are representable and checkable.
#[derive(Debug, Clone, Deserialize)]
pub struct RawNetwork {
    /// Per-node heat capacity in J/K.
    pub heat_capacity: Vec<f64>,
    /// Full node-to-node conductance matrix in W/K (diagonal ignored).
    pub conductance: Vec<Vec<f64>>,
    /// Per-node conductance to ambient in W/K.
    pub ambient_conductance: Vec<f64>,
    /// Ambient temperature in Celsius.
    pub ambient_c: f64,
}

#[derive(Deserialize)]
struct PlatformModelFile {
    platform: Platform,
}

#[derive(Deserialize)]
struct NetworkModelFile {
    network: RawNetwork,
}

/// Constructor for a builtin [`Platform`].
pub type PlatformBuilder = fn() -> Platform;

/// The builtin platforms `--all` checks, as `(spec name, constructor)`.
pub const BUILTINS: [(&str, PlatformBuilder); 2] = [
    ("snapdragon810", platforms::snapdragon_810),
    ("exynos5422", platforms::exynos_5422),
];

/// Assembles the full conductance matrix `G_full` from pairwise couplings
/// and ambient conductances, exactly as `ThermalSpec::lti` does — except
/// negative couplings are carried through rather than skipped, so the
/// Hurwitz check (and its property test) can observe what an invalid
/// conductance does to the spectrum.
#[must_use]
pub fn assemble_g_full(
    n: usize,
    couplings: &[(usize, usize, f64)],
    ambient: &[f64],
) -> Vec<Vec<f64>> {
    let mut g = vec![vec![0.0; n]; n];
    for i in 0..n {
        g[i][i] = ambient[i];
    }
    for &(a, b, cond) in couplings {
        g[a][a] += cond;
        g[b][b] += cond;
        g[a][b] -= cond;
        g[b][a] -= cond;
    }
    g
}

/// The Hurwitz margin of the thermal dynamics `A = -C⁻¹·G_full`.
///
/// `A` is similar to `-S` with `S_ij = G_full_ij / √(C_i·C_j)` symmetric,
/// so `A` is Hurwitz iff every eigenvalue of `S` is strictly positive.
/// Returns the smallest eigenvalue of `S`: positive means Hurwitz, and
/// its magnitude is the slowest decay rate in 1/s.
#[must_use]
pub fn hurwitz_margin(heat_capacity: &[f64], g_full: &[Vec<f64>]) -> f64 {
    let n = heat_capacity.len();
    let mut s = linalg::Mat::zeros(n, n);
    for (i, row) in g_full.iter().enumerate() {
        for (j, &g) in row.iter().enumerate() {
            s[(i, j)] = g / (heat_capacity[i] * heat_capacity[j]).sqrt();
        }
    }
    linalg::symmetric_eigenvalues(&s)
        .first()
        .copied()
        .unwrap_or(f64::NEG_INFINITY)
}

/// Checks one platform: every MPT0xx family, gated as described in the
/// module docs.
#[must_use]
pub fn check_platform(platform: &Platform, origin: &str) -> Report {
    let mut r = Report::default();
    for comp in platform.components() {
        check_opp_table(comp, origin, &mut r);
        check_power_params(comp, origin, &mut r);
    }
    check_component_ids(platform, origin, &mut r);
    let spec_ok = check_thermal_structure(platform.thermal_spec(), origin, &mut r);
    check_cross_references(platform, origin, &mut r);
    if spec_ok {
        r.checks_run += 1;
        let ts = platform.thermal_spec();
        let couplings: Vec<(usize, usize, f64)> = ts
            .couplings
            .iter()
            .map(|c| (c.a, c.b, c.conductance))
            .collect();
        let ambient: Vec<f64> = ts.nodes.iter().map(|n| n.ambient_conductance).collect();
        let caps: Vec<f64> = ts.nodes.iter().map(|n| n.heat_capacity).collect();
        let g_full = assemble_g_full(ts.nodes.len(), &couplings, &ambient);
        let margin = hurwitz_margin(&caps, &g_full);
        let fired = emit_not_hurwitz(margin, origin, &mut r);
        if !fired && r.errors() == 0 {
            check_fixed_points(platform, origin, &mut r);
        }
    }
    r
}

/// The single `MPT008` emission path: pushes the diagnostic when the
/// Hurwitz margin is non-positive and reports whether it fired, so the
/// platform and raw-network checks can never drift in margin formatting
/// or wording.
fn emit_not_hurwitz(margin: f64, origin: &str, r: &mut Report) -> bool {
    if margin > 0.0 {
        return false;
    }
    r.diagnostics.push(Diagnostic::new(
        Code::NotHurwitz,
        origin,
        format!(
            "thermal A-matrix is not Hurwitz: slowest mode decays at {margin:.3e} 1/s \
             (must be > 0)"
        ),
    ));
    true
}

/// Lints one `*.model.json` file: `{"builtin": name}`,
/// `{"platform": {...}}` or `{"network": {...}}`.
#[must_use]
pub fn check_model_file(json: &str, path: &str) -> Report {
    let mut r = Report::default();
    r.checks_run += 1;
    let value = match serde_json::value_from_str(json) {
        Ok(v) => v,
        Err(e) => {
            r.diagnostics.push(Diagnostic::new(
                Code::ParseFailure,
                path,
                format!("invalid JSON: {e}"),
            ));
            return r;
        }
    };
    let Some(obj) = value.as_object() else {
        r.diagnostics.push(Diagnostic::new(
            Code::ParseFailure,
            path,
            "model file must be a JSON object",
        ));
        return r;
    };
    if let Some(builtin) = serde::__find(obj, "builtin") {
        let name = builtin.as_str().unwrap_or("");
        match BUILTINS.iter().find(|(n, _)| *n == name) {
            Some((_, build)) => r.merge(check_platform(&build(), path)),
            None => r.diagnostics.push(Diagnostic::new(
                Code::ParseFailure,
                path,
                format!("unknown builtin platform {name:?} (valid: snapdragon810, exynos5422)"),
            )),
        }
    } else if serde::__find(obj, "platform").is_some() {
        match serde_json::from_str::<PlatformModelFile>(json) {
            Ok(file) => r.merge(check_platform(&file.platform, path)),
            Err(e) => r.diagnostics.push(Diagnostic::new(
                Code::ParseFailure,
                path,
                format!("platform does not parse: {e}"),
            )),
        }
    } else if serde::__find(obj, "network").is_some() {
        match serde_json::from_str::<NetworkModelFile>(json) {
            Ok(file) => r.merge(check_raw_network(&file.network, path)),
            Err(e) => r.diagnostics.push(Diagnostic::new(
                Code::ParseFailure,
                path,
                format!("network does not parse: {e}"),
            )),
        }
    } else {
        r.diagnostics.push(Diagnostic::new(
            Code::ParseFailure,
            path,
            "model file needs one of: \"builtin\", \"platform\", \"network\"",
        ));
    }
    r
}

/// Checks a raw-matrix network: shape, capacities, symmetry, sign,
/// connectivity, then (if structurally clean) the Hurwitz spectrum.
#[must_use]
pub fn check_raw_network(net: &RawNetwork, origin: &str) -> Report {
    let mut r = Report::default();
    r.checks_run += 1;
    let n = net.heat_capacity.len();
    if n == 0
        || net.conductance.len() != n
        || net.conductance.iter().any(|row| row.len() != n)
        || net.ambient_conductance.len() != n
    {
        r.diagnostics.push(Diagnostic::new(
            Code::ParseFailure,
            origin,
            format!(
                "network shape mismatch: {} capacities, {}x? conductance, {} ambient entries",
                n,
                net.conductance.len(),
                net.ambient_conductance.len()
            ),
        ));
        return r;
    }
    for (i, &c) in net.heat_capacity.iter().enumerate() {
        if !c.is_finite() || c <= 0.0 {
            r.diagnostics.push(Diagnostic::new(
                Code::NonPositiveHeatCapacity,
                origin,
                format!("heat_capacity[{i}] = {c} must be finite and > 0"),
            ));
        }
    }
    // Report the first asymmetric pair and the first bad entry only: one
    // root cause (a mis-copied matrix), one diagnostic.
    'symmetry: for i in 0..n {
        for j in (i + 1)..n {
            let (ij, ji) = (net.conductance[i][j], net.conductance[j][i]);
            if (ij - ji).abs() > 1e-9 * ij.abs().max(ji.abs()).max(1.0) {
                r.diagnostics.push(Diagnostic::new(
                    Code::InvalidConductance,
                    origin,
                    format!("conductance matrix asymmetric at ({i},{j}): {ij} vs {ji}"),
                ));
                break 'symmetry;
            }
        }
    }
    'entries: for i in 0..n {
        for j in 0..n {
            let g = net.conductance[i][j];
            if i != j && (!g.is_finite() || g < 0.0) {
                r.diagnostics.push(Diagnostic::new(
                    Code::InvalidConductance,
                    origin,
                    format!("conductance[{i}][{j}] = {g} must be finite and >= 0"),
                ));
                break 'entries;
            }
        }
    }
    for (i, &g) in net.ambient_conductance.iter().enumerate() {
        if !g.is_finite() || g < 0.0 {
            r.diagnostics.push(Diagnostic::new(
                Code::InvalidConductance,
                origin,
                format!("ambient_conductance[{i}] = {g} must be finite and >= 0"),
            ));
            break;
        }
    }
    if r.errors() == 0 {
        let adjacent = |i: usize, j: usize| net.conductance[i][j] > 0.0;
        check_connectivity(n, adjacent, &net.ambient_conductance, origin, &mut r);
    }
    if r.errors() == 0 {
        let couplings: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| (i, j, net.conductance[i][j]))
            .filter(|&(_, _, g)| g != 0.0)
            .collect();
        let g_full = assemble_g_full(n, &couplings, &net.ambient_conductance);
        let margin = hurwitz_margin(&net.heat_capacity, &g_full);
        emit_not_hurwitz(margin, origin, &mut r);
    }
    r
}

fn check_opp_table(comp: &mpt_soc::Component, origin: &str, r: &mut Report) {
    r.checks_run += 1;
    let points: Vec<_> = comp.opps().iter().collect();
    let name = comp.name();
    for pair in points.windows(2) {
        if pair[1].frequency() <= pair[0].frequency() {
            r.diagnostics.push(Diagnostic::new(
                Code::OppFrequencyOrder,
                origin,
                format!(
                    "{name}: OPP frequencies not strictly increasing ({} then {})",
                    pair[0].frequency(),
                    pair[1].frequency()
                ),
            ));
            return; // voltage/power columns are meaningless until fixed
        }
    }
    for pair in points.windows(2) {
        if pair[1].voltage() < pair[0].voltage() {
            r.diagnostics.push(Diagnostic::new(
                Code::OppVoltageMonotonicity,
                origin,
                format!(
                    "{name}: voltage drops from {} to {} as frequency rises to {}",
                    pair[0].voltage(),
                    pair[1].voltage(),
                    pair[1].frequency()
                ),
            ));
            return;
        }
    }
    let power = |p: &mpt_soc::OperatingPoint| {
        comp.power_params()
            .dynamic_power(p.voltage(), p.frequency(), f64::from(comp.core_count()))
            .value()
    };
    for pair in points.windows(2) {
        if power(pair[1]) <= power(pair[0]) {
            r.diagnostics.push(Diagnostic::new(
                Code::OppPowerMonotonicity,
                origin,
                format!(
                    "{name}: max-utilization power not strictly increasing at {} \
                     ({:.3} W then {:.3} W)",
                    pair[1].frequency(),
                    power(pair[0]),
                    power(pair[1])
                ),
            ));
            return;
        }
    }
}

fn check_power_params(comp: &mpt_soc::Component, origin: &str, r: &mut Report) {
    r.checks_run += 1;
    let name = comp.name();
    let pp = comp.power_params();
    let mut bad = |what: &str, value: f64| {
        r.diagnostics.push(Diagnostic::new(
            Code::InvalidPowerCoefficient,
            origin,
            format!("{name}: {what} = {value} is out of range"),
        ));
    };
    if !pp.ceff().is_finite() || pp.ceff() < 0.0 {
        bad("ceff", pp.ceff());
    }
    if !pp.static_floor().value().is_finite() || pp.static_floor().value() < 0.0 {
        bad("static_floor", pp.static_floor().value());
    }
    let leak = pp.leakage();
    if !leak.alpha().is_finite() || leak.alpha() < 0.0 {
        bad("leakage alpha", leak.alpha());
    }
    if !leak.beta().is_finite() || leak.beta() <= 0.0 {
        bad("leakage beta", leak.beta());
    }
}

fn check_component_ids(platform: &Platform, origin: &str, r: &mut Report) {
    r.checks_run += 1;
    let ids: Vec<_> = platform.components().iter().map(|c| c.id()).collect();
    for (i, id) in ids.iter().enumerate() {
        if ids[..i].contains(id) {
            r.diagnostics.push(Diagnostic::new(
                Code::DanglingComponentRef,
                origin,
                format!("component id {id} declared more than once"),
            ));
        }
    }
}

/// Structural checks on a [`ThermalSpec`]; returns whether the spec is
/// sound enough for spectral analysis.
fn check_thermal_structure(ts: &ThermalSpec, origin: &str, r: &mut Report) -> bool {
    r.checks_run += 1;
    let before = r.errors();
    let n = ts.nodes.len();
    if n == 0 {
        r.diagnostics.push(Diagnostic::new(
            Code::DisconnectedNetwork,
            origin,
            "thermal network has no nodes",
        ));
        return false;
    }
    for node in &ts.nodes {
        if !node.heat_capacity.is_finite() || node.heat_capacity <= 0.0 {
            r.diagnostics.push(Diagnostic::new(
                Code::NonPositiveHeatCapacity,
                origin,
                format!(
                    "node '{}': heat_capacity = {} must be finite and > 0",
                    node.name, node.heat_capacity
                ),
            ));
        }
        if !node.ambient_conductance.is_finite() || node.ambient_conductance < 0.0 {
            r.diagnostics.push(Diagnostic::new(
                Code::InvalidConductance,
                origin,
                format!(
                    "node '{}': ambient_conductance = {} must be finite and >= 0",
                    node.name, node.ambient_conductance
                ),
            ));
        }
    }
    for (i, node) in ts.nodes.iter().enumerate() {
        if ts.nodes[..i].iter().any(|m| m.name == node.name) {
            r.diagnostics.push(Diagnostic::new(
                Code::DanglingComponentRef,
                origin,
                format!("duplicate thermal node name '{}'", node.name),
            ));
        }
    }
    let mut indices_ok = true;
    for c in &ts.couplings {
        if c.a >= n || c.b >= n || c.a == c.b {
            r.diagnostics.push(Diagnostic::new(
                Code::InvalidConductance,
                origin,
                format!("coupling ({}, {}) is out of range or a self-loop", c.a, c.b),
            ));
            indices_ok = false;
        } else if !c.conductance.is_finite() || c.conductance <= 0.0 {
            r.diagnostics.push(Diagnostic::new(
                Code::InvalidConductance,
                origin,
                format!(
                    "coupling ({}, {}): conductance = {} must be finite and > 0",
                    c.a, c.b, c.conductance
                ),
            ));
        }
    }
    if indices_ok {
        let adjacent = |i: usize, j: usize| {
            ts.couplings
                .iter()
                .any(|c| ((c.a == i && c.b == j) || (c.a == j && c.b == i)) && c.conductance > 0.0)
        };
        let ambient: Vec<f64> = ts.nodes.iter().map(|m| m.ambient_conductance).collect();
        check_connectivity(n, adjacent, &ambient, origin, r);
    }
    r.errors() == before
}

/// BFS over the coupling graph plus an any-ambient-path check (MPT007).
fn check_connectivity(
    n: usize,
    adjacent: impl Fn(usize, usize) -> bool,
    ambient: &[f64],
    origin: &str,
    r: &mut Report,
) {
    r.checks_run += 1;
    let mut reached = vec![false; n];
    let mut queue = vec![0];
    reached[0] = true;
    while let Some(i) = queue.pop() {
        for (j, seen) in reached.iter_mut().enumerate() {
            if !*seen && adjacent(i, j) {
                *seen = true;
                queue.push(j);
            }
        }
    }
    if let Some(stranded) = reached.iter().position(|&ok| !ok) {
        r.diagnostics.push(Diagnostic::new(
            Code::DisconnectedNetwork,
            origin,
            format!("node {stranded} is not coupled to the rest of the network"),
        ));
    }
    if !ambient.iter().any(|&g| g > 0.0) {
        r.diagnostics.push(Diagnostic::new(
            Code::DisconnectedNetwork,
            origin,
            "no node has a conductance path to ambient; heat cannot leave the system",
        ));
    }
}

fn check_cross_references(platform: &Platform, origin: &str, r: &mut Report) {
    r.checks_run += 1;
    let ts = platform.thermal_spec();
    for sensor in platform.temperature_sensors() {
        if !ts.nodes.iter().any(|n| n.name == sensor.thermal_node()) {
            r.diagnostics.push(Diagnostic::new(
                Code::DanglingSensorNode,
                origin,
                format!(
                    "sensor '{}' reads thermal node '{}', which does not exist",
                    sensor.name(),
                    sensor.thermal_node()
                ),
            ));
        }
    }
    for node in &ts.nodes {
        if let Some(id) = node.component {
            if platform.component(id).is_err() {
                r.diagnostics.push(Diagnostic::new(
                    Code::DanglingComponentRef,
                    origin,
                    format!(
                        "thermal node '{}' maps to undeclared component {id}",
                        node.name
                    ),
                ));
            }
        }
    }
    for rail in platform.power_rails() {
        if platform.component(rail.component()).is_err() {
            r.diagnostics.push(Diagnostic::new(
                Code::DanglingComponentRef,
                origin,
                format!(
                    "power rail '{}' measures undeclared component {}",
                    rail.name(),
                    rail.component()
                ),
            ));
        }
    }
    for comp in platform.components() {
        if ts.node_for_component(comp.id()).is_none() {
            r.diagnostics.push(Diagnostic::new(
                Code::DanglingComponentRef,
                origin,
                format!(
                    "component {} has no thermal node; its heat would vanish",
                    comp.id()
                ),
            ));
        }
    }
}

/// Fixed-point existence at the max-power and idle operating points,
/// following the reduction the application-aware governor performs at
/// runtime. Runaway at max power is a warning (real platforms throttle);
/// runaway at the idle floor is an error (the model can never settle).
fn check_fixed_points(platform: &Platform, origin: &str, r: &mut Report) {
    r.checks_run += 1;
    let ts = platform.thermal_spec();
    let Ok(network) = RcNetwork::from_spec(ts) else {
        // Structural checks passed but from_spec refused: surface as a
        // network problem rather than silently skipping.
        r.diagnostics.push(Diagnostic::new(
            Code::DisconnectedNetwork,
            origin,
            "thermal spec rejected by RcNetwork::from_spec",
        ));
        return;
    };
    let n = ts.nodes.len();
    let mut max_node_w = vec![0.0; n];
    let mut idle_node_w = vec![0.0; n];
    let (mut gain_max, mut gain_idle, mut beta) = (0.0, 0.0, 0.0);
    for comp in platform.components() {
        let (top, bottom) = (comp.opps().highest(), comp.opps().lowest());
        let pp = comp.power_params();
        let dynamic = pp
            .dynamic_power(top.voltage(), top.frequency(), f64::from(comp.core_count()))
            .value();
        let floor = pp.static_floor().value();
        let node = ts
            .node_for_component(comp.id())
            .expect("checked by cross-reference pass");
        max_node_w[node] += dynamic + floor;
        idle_node_w[node] += floor;
        gain_max += pp.leakage().alpha() * top.voltage().value();
        gain_idle += pp.leakage().alpha() * bottom.voltage().value();
        beta = pp.leakage().beta();
    }
    for (label, node_w, gain, runaway_severity) in [
        ("max power", &max_node_w, gain_max, Severity::Warning),
        ("idle floor", &idle_node_w, gain_idle, Severity::Error),
    ] {
        let powers: Vec<Watts> = node_w.iter().map(|&w| Watts::new(w)).collect();
        let total = Watts::new(node_w.iter().sum());
        let hot = match network.steady_state(&powers) {
            Ok(steady) => steady
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.value().total_cmp(&b.1.value()))
                .map_or(0, |(i, _)| i),
            Err(e) => {
                r.diagnostics.push(Diagnostic::new(
                    Code::NotHurwitz,
                    origin,
                    format!("steady state at {label} unsolvable: {e}"),
                ));
                return;
            }
        };
        match network.reduce(&powers, hot, gain, beta) {
            Ok(lumped) => match lumped.stability(total) {
                Stability::Stable { .. } => {}
                Stability::CriticallyStable { .. } | Stability::Runaway => {
                    r.diagnostics.push(
                        Diagnostic::new(
                            Code::NoStableFixedPoint,
                            origin,
                            format!(
                                "no stable power-temperature fixed point at {label} \
                                 ({:.2} W vs critical power {:.2} W)",
                                total.value(),
                                lumped.critical_power().value()
                            ),
                        )
                        .with_severity(runaway_severity),
                    );
                }
            },
            Err(e) => {
                r.diagnostics.push(Diagnostic::new(
                    Code::NoStableFixedPoint,
                    origin,
                    format!("lumped reduction at {label} failed: {e}"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_platforms_are_clean_of_errors() {
        for (name, build) in BUILTINS {
            let report = check_platform(&build(), name);
            assert_eq!(
                report.errors(),
                0,
                "builtin {name} has lint errors:\n{}",
                report.render_text()
            );
            assert!(report.checks_run > 5, "checks actually ran for {name}");
        }
    }

    #[test]
    fn raw_network_catches_asymmetry_once() {
        let net = RawNetwork {
            heat_capacity: vec![10.0, 20.0],
            conductance: vec![vec![0.0, 0.5], vec![0.3, 0.0]],
            ambient_conductance: vec![0.1, 0.1],
            ambient_c: 25.0,
        };
        let report = check_raw_network(&net, "mem");
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![Code::InvalidConductance],
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn raw_network_negative_coupling_is_not_hurwitz() {
        // Symmetric but actively pumping heat: passes the symmetry and
        // connectivity checks (|g| > 0 connects the graph via the sign
        // check being the gate) -- the spectrum is what catches it.
        let net = RawNetwork {
            heat_capacity: vec![10.0, 20.0],
            conductance: vec![vec![0.0, 0.5], vec![0.5, 0.0]],
            ambient_conductance: vec![0.1, 0.1],
            ambient_c: 25.0,
        };
        assert_eq!(check_raw_network(&net, "mem").errors(), 0);
        let g_full = assemble_g_full(2, &[(0, 1, -1.2)], &[0.1, 0.1]);
        assert!(hurwitz_margin(&net.heat_capacity, &g_full) < 0.0);
    }

    #[test]
    fn model_file_dispatch() {
        let ok = check_model_file(r#"{"builtin": "exynos5422"}"#, "m");
        assert_eq!(ok.errors(), 0, "{}", ok.render_text());
        let bad = check_model_file(r#"{"builtin": "pixel9000"}"#, "m");
        assert_eq!(bad.diagnostics[0].code, Code::ParseFailure);
        let none = check_model_file(r#"{"something": 1}"#, "m");
        assert_eq!(none.diagnostics[0].code, Code::ParseFailure);
        let garbage = check_model_file("{nope", "m");
        assert_eq!(garbage.diagnostics[0].code, Code::ParseFailure);
    }
}
