//! `mpt_lint` — static analysis over models, configs and source.
//!
//! ```sh
//! mpt_lint --all                         # everything CI checks, text output
//! mpt_lint --all --format json           # machine-readable
//! mpt_lint --scenario s.json --deny-warnings
//! mpt_lint --platform custom.model.json
//! mpt_lint --source --root .             # determinism scan only
//! mpt_lint --list-codes                  # the stable code registry
//! ```
//!
//! Exit codes: 0 clean (or warnings only), 1 findings of error severity
//! (or any finding under `--deny-warnings`), 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mpt_lint::{config, diag::Code, model, source, Report};
use mpt_obs::Recorder;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

#[derive(Debug)]
struct Args {
    all: bool,
    source_only: bool,
    root: PathBuf,
    models: Vec<PathBuf>,
    scenarios: Vec<PathBuf>,
    campaigns: Vec<PathBuf>,
    alerts: Vec<PathBuf>,
    allowlist: Option<PathBuf>,
    format: Format,
    deny_warnings: bool,
    list_codes: bool,
    verify: bool,
}

const USAGE: &str = "usage: mpt_lint [--all] [--platform FILE]... [--scenario FILE]... \
                     [--campaign FILE]... [--alerts FILE]... [--source] [--root DIR] \
                     [--allowlist FILE] [--format text|json] [--deny-warnings] \
                     [--verify] [--list-codes]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        all: false,
        source_only: false,
        root: PathBuf::from("."),
        models: Vec::new(),
        scenarios: Vec::new(),
        campaigns: Vec::new(),
        alerts: Vec::new(),
        allowlist: None,
        format: Format::Text,
        deny_warnings: false,
        list_codes: false,
        verify: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--all" => args.all = true,
            "--source" => args.source_only = true,
            "--deny-warnings" => args.deny_warnings = true,
            "--verify" => args.verify = true,
            "--list-codes" => args.list_codes = true,
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--platform" => args.models.push(PathBuf::from(value("--platform")?)),
            "--scenario" => args.scenarios.push(PathBuf::from(value("--scenario")?)),
            "--campaign" => args.campaigns.push(PathBuf::from(value("--campaign")?)),
            "--alerts" => args.alerts.push(PathBuf::from(value("--alerts")?)),
            "--allowlist" => args.allowlist = Some(PathBuf::from(value("--allowlist")?)),
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let has_work = args.all
        || args.source_only
        || args.list_codes
        || !(args.models.is_empty()
            && args.scenarios.is_empty()
            && args.campaigns.is_empty()
            && args.alerts.is_empty());
    if !has_work {
        return Err("nothing to lint".to_owned());
    }
    Ok(args)
}

fn list_codes() {
    println!("{:<8} {:<8} meaning", "code", "default");
    for code in Code::ALL {
        println!(
            "{:<8} {:<8} {}",
            code.code(),
            code.default_severity().label(),
            code.title()
        );
    }
}

fn read_checked(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

fn run(args: &Args) -> Result<Report, String> {
    let recorder = Recorder::new();
    let mut report = Report::default();
    if args.all {
        report.merge(
            mpt_lint::run_all(&args.root, &recorder)
                .map_err(|e| format!("walking {}: {e}", args.root.display()))?,
        );
        if args.verify {
            report.merge(
                mpt_lint::verify_all(&args.root)
                    .map_err(|e| format!("walking {}: {e}", args.root.display()))?,
            );
        }
    } else if args.source_only {
        let allowlist_file = args
            .allowlist
            .clone()
            .unwrap_or_else(|| args.root.join(mpt_lint::ALLOWLIST_PATH));
        let allowlist = if allowlist_file.exists() {
            source::Allowlist::load(&allowlist_file)
                .map_err(|e| format!("cannot read {}: {e}", allowlist_file.display()))?
        } else {
            source::Allowlist::default()
        };
        report.merge(
            source::scan_workspace(&args.root, &allowlist)
                .map_err(|e| format!("scanning {}: {e}", args.root.display()))?,
        );
    }
    for path in &args.models {
        let shown = path.display().to_string();
        report.merge(model::check_model_file(&read_checked(path)?, &shown));
    }
    for path in &args.scenarios {
        let shown = path.display().to_string();
        let json = read_checked(path)?;
        report.merge(config::check_scenario_json(&json, &shown));
        if args.verify {
            report.merge(mpt_lint::verify::verify_scenario_json(&json, &shown));
        }
    }
    for path in &args.campaigns {
        let shown = path.display().to_string();
        let json = read_checked(path)?;
        report.merge(config::check_campaign_json(&json, &shown));
        if args.verify {
            report.merge(mpt_lint::verify::verify_campaign_json(&json, &shown));
        }
    }
    for path in &args.alerts {
        let shown = path.display().to_string();
        report.merge(config::check_alerts_json(&read_checked(path)?, &shown));
    }
    Ok(report)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("mpt_lint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list_codes {
        list_codes();
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(report) => {
            match args.format {
                Format::Text => println!("{}", report.render_text()),
                Format::Json => println!("{}", report.render_json()),
            }
            match report.exit_code(args.deny_warnings) {
                0 => ExitCode::SUCCESS,
                code => ExitCode::from(u8::try_from(code).unwrap_or(1)),
            }
        }
        Err(msg) => {
            eprintln!("mpt_lint: {msg}");
            ExitCode::from(2)
        }
    }
}
