//! Source analysis: the determinism scan (MPT2xx).
//!
//! The simulator's core value proposition is bit-exact reproducibility:
//! same spec, same seed, same trace. The cheapest way to lose that is a
//! stray `Instant::now()` or an iteration over a `HashMap`. This pass
//! walks the `src/` trees of the deterministic crates and flags calls to
//! nondeterministic APIs outside the allowlist file
//! (`crates/lint/determinism.allow`), which names the one sanctioned
//! wall-clock site: `mpt_obs::clock`.
//!
//! The scan is textual by design — no syntax tree, no type resolution —
//! so it is fast, dependency-free and predictable. Comment-only lines
//! are skipped and scanning stops at the first `#[cfg(test)]` marker
//! (tests may time and hash freely).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{Code, Diagnostic, Report};

/// Crates whose `src/` trees must stay deterministic. `mpt-obs` is
/// included: it *measures* wall time, but only through its own `clock`
/// module, which the allowlist sanctions.
pub const SCANNED_CRATES: [&str; 5] = [
    "crates/core",
    "crates/obs",
    "crates/sim",
    "crates/soc",
    "crates/thermal",
];

/// The patterns the scan flags, as `(needle, code)`.
pub const PATTERNS: [(&str, Code); 7] = [
    ("Instant::now", Code::WallClockRead),
    (".elapsed()", Code::WallClockRead),
    ("SystemTime", Code::WallClockRead),
    ("thread_rng", Code::NondeterministicRng),
    ("rand::random", Code::NondeterministicRng),
    ("HashMap", Code::UnorderedContainer),
    ("HashSet", Code::UnorderedContainer),
];

/// Parsed form of `determinism.allow`: lines of
/// `<workspace-relative-path> <pattern>`, `#` comments ignored. An entry
/// permits one pattern in one file.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Parses allowlist text.
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| {
                let (path, pattern) = l.split_once(char::is_whitespace)?;
                Some((path.to_owned(), pattern.trim().to_owned()))
            })
            .collect();
        Self { entries }
    }

    /// Loads and parses an allowlist file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying read error.
    pub fn load(path: &Path) -> io::Result<Self> {
        Ok(Self::parse(&fs::read_to_string(path)?))
    }

    /// Whether `pattern` is sanctioned in the file at `rel_path`
    /// (workspace-relative, `/`-separated).
    #[must_use]
    pub fn permits(&self, rel_path: &str, pattern: &str) -> bool {
        self.entries
            .iter()
            .any(|(p, pat)| p == rel_path && pat == pattern)
    }

    /// Number of entries (for the summary line).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Scans one file's content. `rel_path` is the workspace-relative path
/// used both for reporting and for allowlist matching.
#[must_use]
pub fn scan_file_content(rel_path: &str, content: &str, allowlist: &Allowlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed == "#[cfg(test)]" {
            break; // unit tests may time and hash freely
        }
        if trimmed.starts_with("//") {
            continue;
        }
        // Strip trailing line comments so prose about, say, HashMap in a
        // doc sentence on a code line does not fire.
        let code_part = line.split("//").next().unwrap_or(line);
        for (needle, code) in PATTERNS {
            if code_part.contains(needle) && !allowlist.permits(rel_path, needle) {
                out.push(
                    Diagnostic::new(
                        code,
                        rel_path,
                        format!("nondeterministic API `{needle}` outside the allowlist"),
                    )
                    .with_line(lineno + 1),
                );
            }
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for a
/// deterministic report order.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&d)?.collect::<io::Result<_>>()?;
        entries.sort_by_key(std::fs::DirEntry::path);
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scans every `src/` tree in [`SCANNED_CRATES`] under `root`.
///
/// # Errors
///
/// I/O errors reading the trees.
pub fn scan_workspace(root: &Path, allowlist: &Allowlist) -> io::Result<Report> {
    let mut r = Report::default();
    for krate in SCANNED_CRATES {
        let src = root.join(krate).join("src");
        for file in rust_files(&src)? {
            r.checks_run += 1;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let content = fs::read_to_string(&file)?;
            r.diagnostics
                .extend(scan_file_content(&rel, &content, allowlist));
        }
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_each_pattern_with_line_numbers() {
        let src = "use std::time::Instant;\n\
                   let t = Instant::now();\n\
                   let d = t.elapsed();\n\
                   let mut m = HashMap::new();\n";
        let diags = scan_file_content("crates/sim/src/x.rs", src, &Allowlist::default());
        let found: Vec<(Code, usize)> = diags.iter().map(|d| (d.code, d.line.unwrap())).collect();
        assert_eq!(
            found,
            vec![
                (Code::WallClockRead, 2),
                (Code::WallClockRead, 3),
                (Code::UnorderedContainer, 4),
            ]
        );
    }

    #[test]
    fn comments_and_test_modules_are_exempt() {
        let src = "// Instant::now() in prose\n\
                   let x = 1; // explain HashMap here\n\
                   #[cfg(test)]\n\
                   mod tests { fn t() { Instant::now(); } }\n";
        let diags = scan_file_content("crates/sim/src/x.rs", src, &Allowlist::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allowlist_permits_exact_file_pattern_pairs() {
        let allow = Allowlist::parse(
            "# the clock authority\n\
             crates/obs/src/clock.rs Instant::now\n",
        );
        assert_eq!(allow.len(), 1);
        let sanctioned = scan_file_content("crates/obs/src/clock.rs", "Instant::now()", &allow);
        assert!(sanctioned.is_empty());
        let elsewhere = scan_file_content("crates/sim/src/x.rs", "Instant::now()", &allow);
        assert_eq!(elsewhere.len(), 1);
        let other_pattern = scan_file_content("crates/obs/src/clock.rs", "HashSet::new()", &allow);
        assert_eq!(other_pattern.len(), 1);
    }
}
