//! Config analysis: scenarios, campaigns and alert files (MPT1xx).
//!
//! These are cross-reference checks the serde layer cannot express:
//! sensor names must resolve against the scenario's platform, trip
//! points must lie inside the sensor's plausible range, alert rules must
//! reference observables the configured mechanisms actually emit, and
//! sweep axes must be non-empty, duplicate-free and compatible with the
//! base policy. `run_scenario` runs the same checks as a fail-fast phase
//! before tick 0, so a dangling reference refuses to simulate with the
//! same `MPTxxx` diagnostic the linter prints.
//!
//! Checking is two-stage: a few fields (notably `solver` and `engine`)
//! are inspected on the raw JSON value *before* the typed parse, so a
//! misspelled solver gets the specific MPT106 (and a misspelled engine
//! MPT301) rather than a generic MPT101.

use mpt_core::scenario::{
    AlertRuleSpec, CampaignSpec, EngineSpec, PlatformSpec, ScenarioSpec, SolverSpec, SweepAxes,
    ThermalPolicySpec, WorkloadKind,
};

use crate::diag::{Code, Diagnostic, Report, Severity};
use crate::model::MAX_SANE_TEMP_C;

/// Solver names accepted by scenario JSON, mirroring `SolverSpec`.
pub const KNOWN_SOLVERS: [&str; 2] = ["exact_lti", "forward_euler"];

/// Engine names accepted by scenario JSON, mirroring `EngineSpec`.
pub const KNOWN_ENGINES: [&str; 2] = ["fixed", "event"];

/// What the scenario's mechanisms can observably emit; alert rules are
/// checked against this.
struct AlertContext {
    ambient_c: f64,
    /// A foreground workload that reports frames exists.
    foreground_fps: bool,
    /// Some throttling mechanism (baseline policy or app-aware governor)
    /// can generate cap-change events.
    throttling: bool,
}

/// Lints a scenario JSON document.
#[must_use]
pub fn check_scenario_json(json: &str, path: &str) -> Report {
    let mut r = Report::default();
    r.checks_run += 1;
    let Some(value) = parse_value(json, path, &mut r) else {
        return r;
    };
    if let Some(obj) = value.as_object() {
        if !solver_name_ok(serde::__find(obj, "solver"), path, &mut r) {
            return r;
        }
        if !engine_name_ok(serde::__find(obj, "engine"), path, &mut r) {
            return r;
        }
    }
    match serde_json::from_str::<ScenarioSpec>(json) {
        Ok(spec) => r.merge(check_scenario(&spec, path)),
        Err(e) => r.diagnostics.push(Diagnostic::new(
            Code::ParseFailure,
            path,
            format!("scenario does not parse: {e}"),
        )),
    }
    r
}

/// Lints a campaign JSON document.
#[must_use]
pub fn check_campaign_json(json: &str, path: &str) -> Report {
    let mut r = Report::default();
    r.checks_run += 1;
    let Some(value) = parse_value(json, path, &mut r) else {
        return r;
    };
    let base = value
        .as_object()
        .and_then(|obj| serde::__find(obj, "base"))
        .and_then(serde::Value::as_object);
    if !solver_name_ok(base.and_then(|b| serde::__find(b, "solver")), path, &mut r) {
        return r;
    }
    if !engine_name_ok(base.and_then(|b| serde::__find(b, "engine")), path, &mut r) {
        return r;
    }
    match serde_json::from_str::<CampaignSpec>(json) {
        Ok(spec) => r.merge(check_campaign(&spec, path)),
        Err(e) => r.diagnostics.push(Diagnostic::new(
            Code::ParseFailure,
            path,
            format!("campaign does not parse: {e}"),
        )),
    }
    r
}

/// Lints a standalone alert-rules file (a JSON array of rules, as passed
/// to `run_scenario --alerts`). Without a scenario there is no platform
/// or mechanism context, so only rule parameters are checked.
#[must_use]
pub fn check_alerts_json(json: &str, path: &str) -> Report {
    let mut r = Report::default();
    r.checks_run += 1;
    match serde_json::from_str::<Vec<AlertRuleSpec>>(json) {
        Ok(rules) => check_alert_rules(&rules, None, path, &mut r),
        Err(e) => r.diagnostics.push(Diagnostic::new(
            Code::ParseFailure,
            path,
            format!("alert rules do not parse: {e}"),
        )),
    }
    r
}

/// Full cross-reference check of a parsed scenario.
#[must_use]
pub fn check_scenario(spec: &ScenarioSpec, path: &str) -> Report {
    let mut r = Report::default();
    r.checks_run += 1;
    let platform = spec.platform.build();
    let ambient_c = platform.thermal_spec().ambient.value();
    if !spec.duration_s.is_finite() || spec.duration_s <= 0.0 {
        r.diagnostics.push(Diagnostic::new(
            Code::ScenarioShape,
            path,
            format!("duration_s = {} must be finite and > 0", spec.duration_s),
        ));
    }
    if spec.workloads.is_empty() {
        r.diagnostics.push(Diagnostic::new(
            Code::ScenarioShape,
            path,
            "scenario attaches no workloads; nothing would draw power",
        ));
    }
    for (i, w) in spec.workloads.iter().enumerate() {
        r.checks_run += 1;
        if let WorkloadKind::Phased { phases, .. } = &w.kind {
            if let Some(msg) = phase_schedule_problem(phases) {
                // The specific MPT302 beats the generic build failure the
                // same schedule would also produce.
                r.diagnostics.push(Diagnostic::new(
                    Code::NonMonotonicPhases,
                    path,
                    format!("workloads[{i}]: {msg}"),
                ));
                continue;
            }
        }
        if let Err(msg) = w.build() {
            r.diagnostics.push(Diagnostic::new(
                Code::InvalidWorkload,
                path,
                format!("workloads[{i}]: {msg}"),
            ));
        }
    }
    r.checks_run += 1;
    if spec.engine == EngineSpec::Event && spec.solver == SolverSpec::ForwardEuler {
        r.diagnostics.push(Diagnostic::new(
            Code::InvalidEngine,
            path,
            "engine \"event\" needs the exact_lti solver: forward_euler sub-steps at a fixed \
             rate, so analytic macro jumps would change the integration",
        ));
    }
    if let Some(sensor) = &spec.control_sensor {
        r.checks_run += 1;
        if !platform
            .temperature_sensors()
            .iter()
            .any(|s| s.name() == sensor)
        {
            let known: Vec<&str> = platform
                .temperature_sensors()
                .iter()
                .map(mpt_soc::TemperatureSensor::name)
                .collect();
            r.diagnostics.push(Diagnostic::new(
                Code::DanglingControlSensor,
                path,
                format!(
                    "control_sensor {sensor:?} names no sensor on {} (available: {})",
                    platform.name(),
                    known.join(", ")
                ),
            ));
        }
    }
    if let Some(t0) = spec.initial_temperature_c {
        if !t0.is_finite() || !(-40.0..=MAX_SANE_TEMP_C).contains(&t0) {
            r.diagnostics.push(Diagnostic::new(
                Code::ParameterOutOfRange,
                path,
                format!("initial_temperature_c = {t0} outside [-40, {MAX_SANE_TEMP_C}] C"),
            ));
        }
    }
    check_policy(&spec.thermal, ambient_c, path, &mut r);
    if let Some(aa) = &spec.app_aware {
        r.checks_run += 1;
        if !temp_in_range(aa.limit_c, ambient_c) {
            r.diagnostics.push(Diagnostic::new(
                Code::ParameterOutOfRange,
                path,
                format!(
                    "app_aware limit_c = {} outside ({ambient_c}, {MAX_SANE_TEMP_C}] C",
                    aa.limit_c
                ),
            ));
        }
        if !aa.horizon_s.is_finite() || aa.horizon_s <= 0.0 {
            r.diagnostics.push(Diagnostic::new(
                Code::ParameterOutOfRange,
                path,
                format!(
                    "app_aware horizon_s = {} must be finite and > 0",
                    aa.horizon_s
                ),
            ));
        }
    }
    let context = AlertContext {
        ambient_c,
        foreground_fps: spec.workloads.iter().any(|w| {
            w.foreground
                && matches!(
                    w.kind,
                    WorkloadKind::App { .. }
                        | WorkloadKind::ThreeDMark { .. }
                        | WorkloadKind::Nenamark
                )
        }),
        throttling: spec.thermal != ThermalPolicySpec::Disabled || spec.app_aware.is_some(),
    };
    check_alert_rules(&spec.alerts, Some(&context), path, &mut r);
    // Scenario-level queries run over the single-session frame, which
    // has no axis (dictionary) columns — any group-by/filter key is a
    // non-axis key there.
    let (channels, axes) = scenario_query_schema(spec);
    check_queries(&spec.queries, &channels, &axes, path, &mut r);
    r
}

/// Full check of a parsed campaign: the base scenario plus every sweep
/// axis (MPT108) and axis-policy compatibility.
#[must_use]
pub fn check_campaign(spec: &CampaignSpec, path: &str) -> Report {
    let mut r = check_scenario(&spec.base, path);
    let ambient_c = spec.base.platform.build().thermal_spec().ambient.value();
    check_sweep(&spec.sweep, &spec.base.thermal, ambient_c, path, &mut r);
    check_fleet(spec, path, &mut r);
    // Campaign-level queries may target the per-cell metrics frame or
    // any telemetry channel a swept platform records, grouped/filtered
    // by the swept axes.
    let (channels, axes) = campaign_query_schema(spec);
    check_queries(&spec.queries, &channels, &axes, path, &mut r);
    r
}

/// MPT501: validates the campaign's `fleet` block with the same
/// [`problems`](mpt_soc::FleetSpec::problems) surface the runner
/// enforces, plus the `fleet_mix` axis / fleet-block dependency — so a
/// degenerate fleet fails before a single device is jittered.
fn check_fleet(spec: &CampaignSpec, path: &str, r: &mut Report) {
    r.checks_run += 1;
    if !spec.sweep.fleet_mix.is_empty() && spec.fleet.is_none() {
        r.diagnostics.push(Diagnostic::new(
            Code::InvalidFleet,
            path,
            "sweep.fleet_mix needs a campaign-level \"fleet\" block to apply the mix to",
        ));
    }
    let Some(fleet) = &spec.fleet else { return };
    for problem in fleet.problems() {
        r.checks_run += 1;
        r.diagnostics
            .push(Diagnostic::new(Code::InvalidFleet, path, problem));
    }
    // MPT502: well-formed distributions whose *range* can still realize
    // non-physical device parameters (normal tails the MPT501 min/max
    // checks cannot see). Caught here, statically, instead of letting a
    // 10k-device replay inject negative power.
    r.checks_run += 1;
    for problem in fleet.nonphysical_ranges() {
        r.diagnostics
            .push(Diagnostic::new(Code::NonPhysicalFleetJitter, path, problem));
    }
}

/// The static query schema of a single scenario: the channels its
/// platform records, and no axes (a session frame has no dictionary
/// columns to group or filter on).
#[must_use]
pub fn scenario_query_schema(spec: &ScenarioSpec) -> (Vec<String>, Vec<String>) {
    (platform_channels(&spec.platform), Vec::new())
}

/// The static query schema of a campaign: the per-cell metric channels
/// plus every telemetry channel a swept platform records, and the swept
/// axis keys.
#[must_use]
pub fn campaign_query_schema(spec: &CampaignSpec) -> (Vec<String>, Vec<String>) {
    let mut channels: Vec<String> = mpt_core::campaign::CampaignReport::METRIC_CHANNELS
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let platforms = if spec.sweep.platforms.is_empty() {
        std::slice::from_ref(&spec.base.platform)
    } else {
        &spec.sweep.platforms[..]
    };
    for platform in platforms {
        for channel in platform_channels(platform) {
            if !channels.contains(&channel) {
                channels.push(channel);
            }
        }
    }
    if spec.fleet.is_some() {
        // Fleet campaigns additionally expose the per-device population
        // frame: one row per device, grouped by the `device` dictionary
        // column on top of the swept axes.
        for channel in [
            "peak_temp_c",
            "throttle_onset_s",
            "time_above_trip_s",
            "leakage_scale",
            "ambient_offset_c",
            "phase_offset_s",
            "workload_mix",
        ] {
            if !channels.iter().any(|c| c == channel) {
                channels.push(channel.to_owned());
            }
        }
    }
    let mut axes: Vec<String> = spec
        .sweep
        .axis_keys()
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    if spec.fleet.is_some() {
        axes.push("device".to_owned());
    }
    (channels, axes)
}

/// The columnar channels a scenario on `platform` records — the static
/// schema the MPT401 check validates query expressions against before
/// anything runs.
#[must_use]
pub fn platform_channels(platform: &PlatformSpec) -> Vec<String> {
    let platform = platform.build();
    let sensors: Vec<String> = platform
        .temperature_sensors()
        .iter()
        .map(|s| s.name().to_owned())
        .collect();
    let rails: Vec<&str> = platform.components().iter().map(|c| c.id().key()).collect();
    mpt_sim::Telemetry::channel_names_for(&sensors, &rails)
}

/// Checks telemetry query expressions against a static schema: MPT401
/// for a malformed expression or an unrecorded channel, MPT402 for a
/// group-by or filter key outside `axes`. `run_scenario` reuses this
/// for `--query` flags, so a CLI query fails with the same diagnostic
/// the linter prints for an embedded one.
pub fn check_queries(
    queries: &[String],
    channels: &[String],
    axes: &[String],
    path: &str,
    r: &mut Report,
) {
    for (i, expr) in queries.iter().enumerate() {
        r.checks_run += 1;
        let origin = format!("{path}#queries[{i}]");
        match mpt_daq::Query::parse(expr).and_then(|q| q.validate(channels, axes)) {
            Ok(()) => {}
            Err(
                e @ (mpt_daq::QueryError::Parse(_) | mpt_daq::QueryError::UnknownChannel { .. }),
            ) => {
                r.diagnostics.push(Diagnostic::new(
                    Code::QueryUnknownChannel,
                    origin,
                    e.to_string(),
                ));
            }
            Err(e) => {
                r.diagnostics.push(Diagnostic::new(
                    Code::QueryNonAxisKey,
                    origin,
                    e.to_string(),
                ));
            }
        }
    }
}

fn check_sweep(
    sweep: &SweepAxes,
    base_policy: &ThermalPolicySpec,
    ambient_c: f64,
    path: &str,
    r: &mut Report,
) {
    r.checks_run += 1;
    check_axis_duplicates("platforms", &sweep.platforms, path, r);
    check_axis_duplicates("thermal", &sweep.thermal, path, r);
    check_axis_duplicates("workloads", &sweep.workloads, path, r);
    check_axis_duplicates("trips_c", &sweep.trips_c, path, r);
    check_axis_duplicates(
        "initial_temperatures_c",
        &sweep.initial_temperatures_c,
        path,
        r,
    );
    for (i, policy) in sweep.thermal.iter().enumerate() {
        check_policy(policy, ambient_c, &format!("{path}#sweep.thermal[{i}]"), r);
    }
    for (i, set) in sweep.workloads.iter().enumerate() {
        if set.is_empty() {
            r.diagnostics.push(Diagnostic::new(
                Code::InvalidSweepAxis,
                path,
                format!("sweep.workloads[{i}] is empty; every cell needs a workload"),
            ));
        }
        for (j, w) in set.iter().enumerate() {
            if let Err(msg) = w.build() {
                r.diagnostics.push(Diagnostic::new(
                    Code::InvalidWorkload,
                    path,
                    format!("sweep.workloads[{i}][{j}]: {msg}"),
                ));
            }
        }
    }
    for (i, trips) in sweep.trips_c.iter().enumerate() {
        if trips.is_empty() {
            r.diagnostics.push(Diagnostic::new(
                Code::InvalidSweepAxis,
                path,
                format!("sweep.trips_c[{i}] is empty; a step_wise ladder needs trips"),
            ));
        }
        check_trips(trips, ambient_c, &format!("{path}#sweep.trips_c[{i}]"), r);
    }
    if !sweep.trips_c.is_empty() {
        let policies: Vec<&ThermalPolicySpec> = if sweep.thermal.is_empty() {
            vec![base_policy]
        } else {
            sweep.thermal.iter().collect()
        };
        for policy in policies {
            if !matches!(policy, ThermalPolicySpec::StepWise { .. }) {
                r.diagnostics.push(Diagnostic::new(
                    Code::InvalidSweepAxis,
                    path,
                    "trips_c sweep combined with a non-step_wise policy; expansion would fail",
                ));
                break;
            }
        }
    }
    for (i, &t0) in sweep.initial_temperatures_c.iter().enumerate() {
        if !t0.is_finite() || !(-40.0..=MAX_SANE_TEMP_C).contains(&t0) {
            r.diagnostics.push(Diagnostic::new(
                Code::ParameterOutOfRange,
                path,
                format!(
                    "sweep.initial_temperatures_c[{i}] = {t0} outside [-40, {MAX_SANE_TEMP_C}] C"
                ),
            ));
        }
    }
}

fn check_axis_duplicates<T: std::fmt::Debug>(name: &str, axis: &[T], path: &str, r: &mut Report) {
    for (i, entry) in axis.iter().enumerate() {
        let key = format!("{entry:?}");
        if axis[..i].iter().any(|e| format!("{e:?}") == key) {
            r.diagnostics.push(Diagnostic::new(
                Code::InvalidSweepAxis,
                path,
                format!("sweep.{name}[{i}] duplicates an earlier entry; cells would repeat"),
            ));
        }
    }
}

fn check_policy(policy: &ThermalPolicySpec, ambient_c: f64, path: &str, r: &mut Report) {
    r.checks_run += 1;
    match policy {
        ThermalPolicySpec::Disabled => {}
        ThermalPolicySpec::StepWise { trips_c, period_s } => {
            if trips_c.is_empty() {
                r.diagnostics.push(Diagnostic::new(
                    Code::ParameterOutOfRange,
                    path,
                    "step_wise policy needs at least one trip temperature",
                ));
            }
            check_trips(trips_c, ambient_c, path, r);
            if !period_s.is_finite() || *period_s <= 0.0 {
                r.diagnostics.push(Diagnostic::new(
                    Code::ParameterOutOfRange,
                    path,
                    format!("step_wise period_s = {period_s} must be finite and > 0"),
                ));
            }
        }
        ThermalPolicySpec::Ipa {
            control_c,
            sustainable_w,
            gpu_weight,
        } => {
            if !temp_in_range(*control_c, ambient_c) {
                r.diagnostics.push(Diagnostic::new(
                    Code::ParameterOutOfRange,
                    path,
                    format!(
                        "ipa control_c = {control_c} outside ({ambient_c}, {MAX_SANE_TEMP_C}] C"
                    ),
                ));
            }
            if !sustainable_w.is_finite() || *sustainable_w <= 0.0 {
                r.diagnostics.push(Diagnostic::new(
                    Code::ParameterOutOfRange,
                    path,
                    format!("ipa sustainable_w = {sustainable_w} must be finite and > 0"),
                ));
            }
            if !gpu_weight.is_finite() || *gpu_weight <= 0.0 {
                r.diagnostics.push(Diagnostic::new(
                    Code::ParameterOutOfRange,
                    path,
                    format!("ipa gpu_weight = {gpu_weight} must be finite and > 0"),
                ));
            }
        }
    }
}

fn check_trips(trips_c: &[f64], ambient_c: f64, path: &str, r: &mut Report) {
    for (i, &trip) in trips_c.iter().enumerate() {
        if !temp_in_range(trip, ambient_c) {
            r.diagnostics.push(Diagnostic::new(
                Code::ParameterOutOfRange,
                path,
                format!(
                    "trip point {trip} C outside the sensor range ({ambient_c}, \
                     {MAX_SANE_TEMP_C}] C"
                ),
            ));
        }
        if i > 0 && trip <= trips_c[i - 1] {
            r.diagnostics.push(Diagnostic::new(
                Code::ParameterOutOfRange,
                path,
                format!(
                    "trip points must be strictly ascending ({} then {trip})",
                    trips_c[i - 1]
                ),
            ));
        }
    }
}

fn check_alert_rules(
    rules: &[AlertRuleSpec],
    context: Option<&AlertContext>,
    path: &str,
    r: &mut Report,
) {
    fn invalid(r: &mut Report, origin: &str, what: String) {
        r.diagnostics.push(
            Diagnostic::new(Code::UnreachableAlert, origin, what).with_severity(Severity::Error),
        );
    }
    for (i, rule) in rules.iter().enumerate() {
        r.checks_run += 1;
        let origin = format!("{path}#alerts[{i}]");
        match *rule {
            AlertRuleSpec::TempAbove {
                threshold_c,
                sustain_s,
            } => {
                if let Some(ctx) = context {
                    if !temp_in_range(threshold_c, ctx.ambient_c) {
                        r.diagnostics.push(Diagnostic::new(
                            Code::ParameterOutOfRange,
                            &origin,
                            format!(
                                "temp_above threshold_c = {threshold_c} outside the sensor \
                                 range ({}, {MAX_SANE_TEMP_C}] C",
                                ctx.ambient_c
                            ),
                        ));
                    }
                }
                if !sustain_s.is_finite() || sustain_s < 0.0 {
                    invalid(
                        r,
                        &origin,
                        format!("temp_above sustain_s = {sustain_s} must be >= 0"),
                    );
                }
            }
            AlertRuleSpec::FpsBelow { target, sustain_s } => {
                if !target.is_finite() || target <= 0.0 {
                    invalid(
                        r,
                        &origin,
                        format!("fps_below target = {target} must be finite and > 0"),
                    );
                }
                if !sustain_s.is_finite() || sustain_s < 0.0 {
                    invalid(
                        r,
                        &origin,
                        format!("fps_below sustain_s = {sustain_s} must be >= 0"),
                    );
                }
                if let Some(ctx) = context {
                    if !ctx.foreground_fps {
                        invalid(
                            r,
                            &origin,
                            "fps_below watches the foreground frame rate, but no foreground \
                             workload reports frames"
                                .to_owned(),
                        );
                    }
                }
            }
            AlertRuleSpec::ThrottleStorm { events, window_s } => {
                if events == 0 {
                    invalid(r, &origin, "throttle_storm events must be >= 1".to_owned());
                }
                if !window_s.is_finite() || window_s <= 0.0 {
                    invalid(
                        r,
                        &origin,
                        format!("throttle_storm window_s = {window_s} must be > 0"),
                    );
                }
                warn_if_no_throttling(context, "throttle_storm", &origin, r);
            }
            AlertRuleSpec::Runaway {
                window_s,
                slope_c_per_s,
            } => {
                if !window_s.is_finite() || window_s <= 0.0 {
                    invalid(
                        r,
                        &origin,
                        format!("runaway window_s = {window_s} must be > 0"),
                    );
                }
                if !slope_c_per_s.is_finite() || slope_c_per_s <= 0.0 {
                    invalid(
                        r,
                        &origin,
                        format!("runaway slope_c_per_s = {slope_c_per_s} must be > 0"),
                    );
                }
                warn_if_no_throttling(context, "runaway", &origin, r);
            }
        }
    }
}

fn warn_if_no_throttling(context: Option<&AlertContext>, rule: &str, origin: &str, r: &mut Report) {
    if let Some(ctx) = context {
        if !ctx.throttling {
            r.diagnostics.push(Diagnostic::new(
                Code::UnreachableAlert,
                origin,
                format!(
                    "{rule} watches throttle events, but no thermal policy or app-aware \
                     governor is configured to emit any"
                ),
            ));
        }
    }
}

fn temp_in_range(t: f64, ambient_c: f64) -> bool {
    t.is_finite() && t > ambient_c && t <= MAX_SANE_TEMP_C
}

/// The first ordering problem in a phased schedule, if any: end times
/// must be finite, strictly increasing and start above zero. (Rate and
/// thread validity stay with the generic workload build check, MPT103.)
fn phase_schedule_problem(phases: &[mpt_core::scenario::PhaseSpec]) -> Option<String> {
    if phases.is_empty() {
        return Some("phased workload has no phases".to_owned());
    }
    let mut prev = 0.0;
    for (i, p) in phases.iter().enumerate() {
        if !p.until_s.is_finite() || p.until_s <= prev {
            return Some(format!(
                "phases[{i}].until_s = {} must be finite and strictly after {prev}",
                p.until_s
            ));
        }
        prev = p.until_s;
    }
    None
}

fn parse_value(json: &str, path: &str, r: &mut Report) -> Option<serde::Value> {
    match serde_json::value_from_str(json) {
        Ok(v) => Some(v),
        Err(e) => {
            r.diagnostics.push(Diagnostic::new(
                Code::ParseFailure,
                path,
                format!("invalid JSON: {e}"),
            ));
            None
        }
    }
}

/// True when the raw `solver` value (if any) names a known solver; pushes
/// MPT106 and returns false otherwise.
fn solver_name_ok(solver: Option<&serde::Value>, path: &str, r: &mut Report) -> bool {
    r.checks_run += 1;
    let Some(value) = solver else {
        return true;
    };
    match value.as_str() {
        Some(name) if KNOWN_SOLVERS.contains(&name) => true,
        Some(name) => {
            r.diagnostics.push(Diagnostic::new(
                Code::UnknownSolver,
                path,
                format!(
                    "solver {name:?} is not registered (valid: {})",
                    KNOWN_SOLVERS.join(", ")
                ),
            ));
            false
        }
        None => {
            r.diagnostics.push(Diagnostic::new(
                Code::UnknownSolver,
                path,
                "solver must be a string naming a registered solver",
            ));
            false
        }
    }
}

/// True when the raw `engine` value (if any) names a known stepping
/// engine; pushes MPT301 and returns false otherwise.
fn engine_name_ok(engine: Option<&serde::Value>, path: &str, r: &mut Report) -> bool {
    r.checks_run += 1;
    let Some(value) = engine else {
        return true;
    };
    match value.as_str() {
        Some(name) if KNOWN_ENGINES.contains(&name) => true,
        Some(name) => {
            r.diagnostics.push(Diagnostic::new(
                Code::InvalidEngine,
                path,
                format!(
                    "engine {name:?} is not registered (valid: {})",
                    KNOWN_ENGINES.join(", ")
                ),
            ));
            false
        }
        None => {
            r.diagnostics.push(Diagnostic::new(
                Code::InvalidEngine,
                path,
                "engine must be a string naming a stepping engine",
            ));
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpt_core::scenario::PlatformSpec;

    fn minimal() -> ScenarioSpec {
        serde_json::from_str(
            r#"{
                "platform": "exynos5422",
                "duration_s": 5.0,
                "workloads": [ { "kind": "basic_math" } ]
            }"#,
        )
        .expect("minimal scenario parses")
    }

    #[test]
    fn minimal_scenario_is_clean() {
        let report = check_scenario(&minimal(), "s");
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn dangling_control_sensor_fires_mpt104() {
        let mut spec = minimal();
        spec.control_sensor = Some("skin_xyz".to_owned());
        let report = check_scenario(&spec, "s");
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::DanglingControlSensor]);
    }

    #[test]
    fn unknown_solver_fires_mpt106_before_typed_parse() {
        let report = check_scenario_json(
            r#"{ "platform": "exynos5422", "duration_s": 1.0, "solver": "magic",
                 "workloads": [ { "kind": "basic_math" } ] }"#,
            "s",
        );
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::UnknownSolver]);
    }

    #[test]
    fn unknown_engine_fires_mpt301_before_typed_parse() {
        let report = check_scenario_json(
            r#"{ "platform": "exynos5422", "duration_s": 1.0, "engine": "warp",
                 "workloads": [ { "kind": "basic_math" } ] }"#,
            "s",
        );
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::InvalidEngine]);
    }

    #[test]
    fn event_engine_with_forward_euler_fires_mpt301() {
        let report = check_scenario_json(
            r#"{ "platform": "exynos5422", "duration_s": 1.0,
                 "engine": "event", "solver": "forward_euler",
                 "workloads": [ { "kind": "basic_math" } ] }"#,
            "s",
        );
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::InvalidEngine]);
        // The supported pairing stays clean.
        let report = check_scenario_json(
            r#"{ "platform": "exynos5422", "duration_s": 1.0, "engine": "event",
                 "workloads": [ { "kind": "basic_math" } ] }"#,
            "s",
        );
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn non_monotonic_phases_fire_mpt302() {
        let report = check_scenario_json(
            r#"{ "platform": "exynos5422", "duration_s": 10.0,
                 "workloads": [ { "kind": "phased", "name": "p", "phases": [
                     { "until_s": 5.0, "rate": 1e9 },
                     { "until_s": 3.0, "rate": 2e9 } ] } ] }"#,
            "s",
        );
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::NonMonotonicPhases]);
        // A bad rate is still the generic workload-build failure.
        let report = check_scenario_json(
            r#"{ "platform": "exynos5422", "duration_s": 10.0,
                 "workloads": [ { "kind": "phased", "name": "p", "phases": [
                     { "until_s": 5.0, "rate": -1.0 } ] } ] }"#,
            "s",
        );
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::InvalidWorkload]);
    }

    #[test]
    fn unreachable_alerts_warn_but_invalid_params_error() {
        let mut spec = minimal();
        spec.alerts = vec![
            AlertRuleSpec::ThrottleStorm {
                events: 5,
                window_s: 30.0,
            },
            AlertRuleSpec::FpsBelow {
                target: 30.0,
                sustain_s: 1.0,
            },
        ];
        let report = check_scenario(&spec, "s");
        assert_eq!(report.warnings(), 1, "{}", report.render_text());
        assert_eq!(report.errors(), 1, "{}", report.render_text());
    }

    #[test]
    fn bad_trips_and_policy_parameters_fire_mpt105() {
        let mut spec = minimal();
        spec.thermal = ThermalPolicySpec::StepWise {
            trips_c: vec![90.0, 80.0, 200.0],
            period_s: 0.0,
        };
        let report = check_scenario(&spec, "s");
        assert!(report.errors() >= 3, "{}", report.render_text());
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code == Code::ParameterOutOfRange));
    }

    #[test]
    fn campaign_axis_checks_fire_mpt108() {
        let campaign = CampaignSpec {
            base: minimal(),
            sweep: SweepAxes {
                platforms: vec![PlatformSpec::Exynos5422, PlatformSpec::Exynos5422],
                trips_c: vec![vec![60.0, 70.0]],
                ..SweepAxes::default()
            },
            seed: 0,
            queries: Vec::new(),
            fleet: None,
        };
        let report = check_campaign(&campaign, "c");
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        // Duplicate platform entry, plus trips_c against a non-step_wise
        // base policy.
        assert_eq!(
            codes,
            vec![Code::InvalidSweepAxis, Code::InvalidSweepAxis],
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn campaign_fleet_checks_fire_mpt501() {
        let mut campaign = CampaignSpec {
            base: minimal(),
            sweep: SweepAxes {
                fleet_mix: vec![0.5, 1.0],
                ..SweepAxes::default()
            },
            seed: 0,
            queries: Vec::new(),
            fleet: None,
        };
        // Mix axis without a fleet block.
        let report = check_campaign(&campaign, "c");
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::InvalidFleet], "{}", report.render_text());

        // Degenerate fleet: zero devices, inverted jitter, absurd trip.
        campaign.fleet = Some(mpt_soc::FleetSpec {
            devices: 0,
            leakage_scale: mpt_soc::ParamJitter::Uniform { min: 2.0, max: 1.0 },
            ambient_c: mpt_soc::ParamJitter::fixed(0.0),
            phase_offset_s: mpt_soc::ParamJitter::fixed(0.0),
            workload_mix: mpt_soc::ParamJitter::fixed(1.0),
            trip_c: Some(500.0),
        });
        let report = check_campaign(&campaign, "c");
        assert!(
            report
                .diagnostics
                .iter()
                .filter(|d| d.code == Code::InvalidFleet)
                .count()
                >= 3,
            "{}",
            report.render_text()
        );

        // A healthy fleet block is clean and unlocks the device schema.
        campaign.fleet = Some(mpt_soc::FleetSpec {
            devices: 100,
            leakage_scale: mpt_soc::ParamJitter::Normal {
                mean: 1.0,
                std: 0.05,
            },
            ambient_c: mpt_soc::ParamJitter::Uniform {
                min: -5.0,
                max: 10.0,
            },
            phase_offset_s: mpt_soc::ParamJitter::fixed(0.0),
            workload_mix: mpt_soc::ParamJitter::fixed(1.0),
            trip_c: Some(70.0),
        });
        campaign.queries = vec!["p99(peak_temp_c) by device".to_owned()];
        let report = check_campaign(&campaign, "c");
        assert_eq!(report.diagnostics.len(), 0, "{}", report.render_text());
        let (channels, axes) = campaign_query_schema(&campaign);
        assert!(channels.iter().any(|c| c == "throttle_onset_s"));
        assert!(axes.iter().any(|a| a == "device"));
    }

    #[test]
    fn scenario_query_checks_fire_mpt401_and_402() {
        let mut spec = minimal();
        spec.queries = vec![
            "mean(total_power_w)".to_owned(),          // clean
            "max(power_npu_w)".to_owned(),             // unknown channel
            "nonsense".to_owned(),                     // malformed
            "mean(max_temp_c) by platform".to_owned(), // no axes in a scenario
        ];
        let report = check_scenario(&spec, "s");
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                Code::QueryUnknownChannel,
                Code::QueryUnknownChannel,
                Code::QueryNonAxisKey
            ],
            "{}",
            report.render_text()
        );
        assert!(report.diagnostics[0].path.ends_with("#queries[1]"));
    }

    #[test]
    fn campaign_queries_accept_axes_and_metric_channels() {
        let campaign = CampaignSpec {
            base: minimal(),
            sweep: SweepAxes {
                platforms: vec![PlatformSpec::Exynos5422, PlatformSpec::Snapdragon810],
                initial_temperatures_c: vec![35.0, 50.0],
                ..SweepAxes::default()
            },
            seed: 0,
            queries: vec![
                "max(peak_temperature_c) by platform".to_owned(), // metrics frame
                "p95(max_temp_c) by ambient".to_owned(),          // telemetry channel
                "mean(total_power_w) where thermal=ipa".to_owned(), // unswept axis
            ],
            fleet: None,
        };
        let report = check_campaign(&campaign, "c");
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![Code::QueryNonAxisKey],
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn shipped_style_alerts_file_is_clean() {
        let report = check_alerts_json(
            r#"[ { "rule": "temp_above", "threshold_c": 43.0, "sustain_s": 5.0 },
                 { "rule": "runaway" } ]"#,
            "a",
        );
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }
}
