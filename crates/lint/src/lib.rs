#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! `mpt-lint`: static analysis over platform models, scenario/campaign
//! configs and the sim crates' source.
//!
//! Three analysis families, each with stable machine-readable `MPTxxx`
//! diagnostic codes (see [`diag::Code`]):
//!
//! - [`model`] (MPT0xx) — OPP-table monotonicity, power coefficients,
//!   conductance symmetry and connectivity, a Hurwitz check of the
//!   assembled thermal A-matrix, and fixed-point existence at the
//!   max-power and idle operating points.
//! - [`config`] (MPT1xx) — cross-reference checks over scenario,
//!   campaign and alert JSON: sensor names resolve, trip points lie in
//!   the sensor range, alert rules reference observables the configured
//!   mechanisms emit, solver names are registered, sweep axes are sane.
//!   `run_scenario` runs the same checks fail-fast before tick 0.
//! - [`source`] (MPT2xx) — a determinism scan over the sim crates
//!   flagging wall-clock reads, nondeterministic RNGs and unordered
//!   containers outside `crates/lint/determinism.allow`.
//! - [`verify`] (MPT6xx) — the static reachability certifier: interval
//!   abstract interpretation over the discretized thermal system
//!   proving, before tick 0, whether a scenario can trip (no-trip
//!   certificate, possible trip, guaranteed trip, governor limit-cycle
//!   risk) plus the platform's thermally-safe sustained power budget.
//!   Opt-in via `mpt_lint --verify` / `run_scenario --verify`.
//!
//! The `mpt_lint` binary fronts all three; `--all` is wired into CI as a
//! blocking job. Lint activity is observable through `mpt-obs`: each
//! family runs under a `lint` span and feeds the `mpt_lint_checks_total`
//! and `mpt_lint_diagnostics_total` counters.
//!
//! # Examples
//!
//! ```
//! use mpt_lint::config::check_scenario_json;
//!
//! let report = check_scenario_json(
//!     r#"{ "platform": "exynos5422", "duration_s": 1.0,
//!          "control_sensor": "skin_xyz",
//!          "workloads": [ { "kind": "basic_math" } ] }"#,
//!     "example.json",
//! );
//! assert_eq!(report.errors(), 1);
//! assert!(report.render_text().contains("MPT104"));
//! ```

use std::fs;
use std::io;
use std::path::Path;

use mpt_obs::{Counter, Recorder};

pub mod config;
pub mod diag;
pub mod model;
pub mod source;
pub mod verify;

/// Runs the MPT6xx certifier over every scenario and campaign JSON under
/// `<root>/scenarios/` (skipping the `invalid/` fixtures), as
/// `mpt_lint --all --verify` and the CI verify gate do.
///
/// # Errors
///
/// I/O errors walking the workspace.
pub fn verify_all(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for path in json_files_skipping_invalid(&root.join("scenarios"))? {
        let json = fs::read_to_string(&path)?;
        let shown = path.display().to_string();
        match classify(&path) {
            FileKind::Campaign => report.merge(verify::verify_campaign_json(&json, &shown)),
            FileKind::Scenario => report.merge(verify::verify_scenario_json(&json, &shown)),
            FileKind::Model | FileKind::Alerts => {}
        }
    }
    Ok(report)
}

pub use diag::{Code, Diagnostic, Report, Severity};

/// Relative path of the determinism allowlist within the workspace.
pub const ALLOWLIST_PATH: &str = "crates/lint/determinism.allow";

/// Directory under `scenarios/` holding intentionally broken fixtures;
/// `--all` skips it (the fixture tests lint them individually).
pub const INVALID_DIR: &str = "invalid";

/// Classification of a config file by its path, mirroring the
/// `run_scenario` CLI's conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `*.model.json` — a platform/network model file.
    Model,
    /// `*.campaign.json` — a campaign spec.
    Campaign,
    /// A JSON array of alert rules (under an `alerts/` directory).
    Alerts,
    /// Anything else: a scenario spec.
    Scenario,
}

/// Classifies a config path the way `check_config_file` will treat it.
#[must_use]
pub fn classify(path: &Path) -> FileKind {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name.ends_with(".model.json") {
        FileKind::Model
    } else if name.ends_with(".campaign.json") {
        FileKind::Campaign
    } else if path
        .parent()
        .and_then(|p| p.file_name())
        .is_some_and(|d| d == "alerts")
    {
        FileKind::Alerts
    } else {
        FileKind::Scenario
    }
}

/// Lints one file according to its [`classify`] kind.
///
/// # Errors
///
/// Propagates the read error if the file is unreadable.
pub fn check_file(path: &Path) -> io::Result<Report> {
    let json = fs::read_to_string(path)?;
    let shown = path.display().to_string();
    Ok(match classify(path) {
        FileKind::Model => model::check_model_file(&json, &shown),
        FileKind::Campaign => config::check_campaign_json(&json, &shown),
        FileKind::Alerts => config::check_alerts_json(&json, &shown),
        FileKind::Scenario => config::check_scenario_json(&json, &shown),
    })
}

/// Runs everything `--all` covers: the builtin platforms, every JSON
/// file under `<root>/scenarios/` (skipping `scenarios/invalid/`, whose
/// fixtures are supposed to fail), and the source scan.
///
/// # Errors
///
/// I/O errors walking the workspace.
pub fn run_all(root: &Path, recorder: &Recorder) -> io::Result<Report> {
    let mut report = Report::default();
    {
        let _span = recorder.span("lint", "model");
        for (name, build) in model::BUILTINS {
            report.merge(model::check_platform(&build(), &format!("builtin:{name}")));
        }
    }
    {
        let _span = recorder.span("lint", "config");
        for path in json_files_skipping_invalid(&root.join("scenarios"))? {
            report.merge(check_file(&path)?);
        }
    }
    {
        let _span = recorder.span("lint", "source");
        let allowlist_file = root.join(ALLOWLIST_PATH);
        let allowlist = if allowlist_file.exists() {
            source::Allowlist::load(&allowlist_file)?
        } else {
            source::Allowlist::default()
        };
        report.merge(source::scan_workspace(root, &allowlist)?);
    }
    recorder.add(Counter::LintChecksRun, report.checks_run);
    recorder.add(Counter::LintDiagnostics, report.diagnostics.len() as u64);
    Ok(report)
}

/// Sorted `*.json` files under `dir` (recursively), skipping the
/// `invalid/` fixture directory. Missing `dir` yields an empty list so
/// `--all` works from a partial checkout.
fn json_files_skipping_invalid(dir: &Path) -> io::Result<Vec<std::path::PathBuf>> {
    let mut files = Vec::new();
    if !dir.is_dir() {
        return Ok(files);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&d)?.collect::<io::Result<_>>()?;
        entries.sort_by_key(std::fs::DirEntry::path);
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == INVALID_DIR) {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "json") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn workspace_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root resolves")
    }

    #[test]
    fn classify_follows_cli_conventions() {
        assert_eq!(classify(Path::new("a/b.model.json")), FileKind::Model);
        assert_eq!(classify(Path::new("a/b.campaign.json")), FileKind::Campaign);
        assert_eq!(
            classify(Path::new("scenarios/alerts/r.json")),
            FileKind::Alerts
        );
        assert_eq!(
            classify(Path::new("scenarios/game.json")),
            FileKind::Scenario
        );
    }

    #[test]
    fn run_all_on_this_workspace_has_no_errors() {
        let recorder = Recorder::new();
        let report = run_all(&workspace_root(), &recorder).expect("workspace walks");
        assert_eq!(
            report.errors(),
            0,
            "shipped tree must lint clean:\n{}",
            report.render_text()
        );
        assert!(report.checks_run > 20, "the sweep actually ran");
        assert_eq!(recorder.counter(Counter::LintChecksRun), report.checks_run);
        assert_eq!(
            recorder.counter(Counter::LintDiagnostics),
            report.diagnostics.len() as u64
        );
        let cats: Vec<String> = recorder
            .spans()
            .iter()
            .map(|s| s.name.to_string())
            .collect();
        for expected in ["model", "config", "source"] {
            assert!(
                cats.iter().any(|n| n == expected),
                "span {expected} missing"
            );
        }
    }
}
