//! MPT6xx — the static reachability certifier: prove thermal safety
//! before tick 0.
//!
//! The verifier performs abstract interpretation over the same cached
//! discretized system `(Ad, Bd)` the simulator integrates: per-node
//! power inputs are replaced by **intervals** bounding everything the
//! workload zoo, OPP tables and (for fleet cells) the full `ParamJitter`
//! ranges can realize, and an outward-rounded interval mat-vec
//! ([`Discretization::step_interval`]) propagates a guaranteed per-node
//! temperature envelope through every scenario phase. Every concrete
//! trajectory — either engine, either platform, any jitter draw — lies
//! inside the envelope, so its verdicts are proofs, not observations:
//!
//! - **MPT601** (info): the envelope's upper bound stays at least
//!   [`DEFAULT_MARGIN_C`] below the trip reference — the scenario can
//!   *never* trip. A positive certificate; never fails CI.
//! - **MPT602** (warning): the envelope straddles the trip — a trip is
//!   possible but not certain. Reports the first straddle time.
//! - **MPT603** (error): the envelope's *lower* bound crosses the trip —
//!   even the most optimistic trajectory trips.
//! - **MPT604** (warning): the step-wise governor's abstract
//!   `(cooling state, steady temperature)` transition graph contains a
//!   throttle/release cycle — a limit-cycle (throttle-storm) risk.
//!
//! Alongside the verdict the certifier derives the platform's
//! thermally-safe **sustained power budget**: the largest total power
//! whose steady state `G⁻¹·p` keeps every node below the trip.
//!
//! # Soundness contract
//!
//! The envelope brackets trajectories of the exact-LTI solver at the
//! base 10 ms tick ([`BASE_DT_S`]); the forward-Euler reference solver
//! tracks it within its documented 0.1 °C tolerance, which the
//! [`DEFAULT_MARGIN_C`] certificate margin absorbs. The upper bound
//! evaluates leakage at the 125 °C sanity cap; if the envelope itself
//! escapes that cap the certifier reports the escape instead of
//! certifying (the leakage bound would no longer dominate).
//!
//! # Examples
//!
//! ```
//! use mpt_lint::verify::verify_scenario;
//!
//! let spec = serde_json::from_str(
//!     r#"{ "platform": "snapdragon810", "duration_s": 2.0,
//!          "workloads": [ { "kind": "basic_math" } ] }"#,
//! )
//! .unwrap();
//! let v = verify_scenario(&spec, "example.json").unwrap();
//! assert_eq!(v.summary.verdict, "MPT601");
//! ```

use mpt_core::report::{CellVerification, VerificationSummary};
use mpt_core::scenario::{
    CampaignSpec, ClusterSpec, PhaseSpec, ScenarioSpec, ThermalPolicySpec, WorkloadKind,
};
use mpt_soc::{ComponentId, FleetSpec, Platform, ThermalLti};
use mpt_thermal::linalg::{self, Mat};
use mpt_thermal::Discretization;
use mpt_units::Celsius;

use crate::diag::{Code, Diagnostic, Report};
use crate::model::MAX_SANE_TEMP_C;

/// The simulator's base tick, seconds. The envelope is propagated on the
/// same grid the fixed-dt engine integrates (the event engine only adds
/// wake points between grid ticks; power is piecewise constant either
/// way, so the grid samples still bracket).
pub const BASE_DT_S: f64 = 0.01;

/// Safety margin, Celsius, the envelope's upper bound must keep below
/// the trip reference for an MPT601 certificate. Absorbs the
/// forward-Euler reference solver's documented 0.1 °C deviation from
/// the exact discretization with room to spare.
pub const DEFAULT_MARGIN_C: f64 = 1.0;

/// The step-wise governor's release hysteresis, Celsius. Mirrors the
/// `TripPoint` hysteresis `build_scenario_cached` configures.
const HYSTERESIS_C: f64 = 1.5;

/// Maximum step-wise cooling state for the GPU (mirrors the scenario
/// builder's per-component limits).
const STEPWISE_GPU_LIMIT: usize = 3;
/// Maximum step-wise cooling state for the big cluster.
const STEPWISE_BIG_LIMIT: usize = 5;

/// Upper bounds on what one workload can demand, used to cap cluster
/// utilization: `(threads, big-equivalent cycles per second, uses_gpu)`.
/// `f64::INFINITY` rate means "only thread-limited". These mirror the
/// fixed demand shapes in `mpt-workloads`; the envelope-containment
/// proptests pin the two crates together.
fn workload_bound(kind: &WorkloadKind) -> Result<Option<(f64, f64, bool)>, String> {
    Ok(Some(match kind {
        WorkloadKind::App { name } => {
            let threads = match name.as_str() {
                "paper_io" | "facebook" => 2.0,
                "stickman_hook" | "google_hangouts" => 1.0,
                "amazon" => 1.15,
                other => return Err(format!("unknown app {other:?}")),
            };
            (threads, f64::INFINITY, true)
        }
        // 3DMark/Nenamark end on *delivered* work, which a throttled run
        // stretches past the nominal duration — treat them as active for
        // the whole run (sound, possibly loose near the end).
        WorkloadKind::ThreeDMark { .. } => (2.0, f64::INFINITY, true),
        WorkloadKind::Nenamark => (1.5, f64::INFINITY, true),
        WorkloadKind::BasicMath => (1.0, f64::INFINITY, false),
        WorkloadKind::Steady { rate, threads, .. } => (*threads, *rate, false),
        WorkloadKind::Bursty { .. } => (2.0, f64::INFINITY, false),
        // Phased demand is time-dependent; handled per segment.
        WorkloadKind::Phased { .. } => return Ok(None),
    }))
}

/// The phase a `Phased` workload is in at time `t` (phases are strictly
/// increasing in `until_s`; after the last one the workload is idle).
fn phase_at(phases: &[PhaseSpec], t: f64) -> Option<(f64, f64, bool)> {
    let p = phases.iter().find(|p| p.until_s > t)?;
    if p.rate <= 0.0 {
        return None; // declared idle phase
    }
    Some((p.threads, p.rate, false))
}

/// One maximal time interval over which every workload's demand bound is
/// constant, with the per-cluster `(threads, rate)` caps active in it.
#[derive(Debug, Clone)]
struct Segment {
    start_s: f64,
    end_s: f64,
    little: Vec<(f64, f64)>,
    big: Vec<(f64, f64)>,
    gpu_active: bool,
}

/// Splits the scenario at every `Phased` boundary and collects the
/// demand bounds active in each segment. With the app-aware governor in
/// migration mode a workload can run on either cluster, so its demand is
/// (soundly) counted against both.
fn segments(spec: &ScenarioSpec) -> Result<Vec<Segment>, String> {
    let mut cuts = vec![0.0, spec.duration_s.max(0.0)];
    for w in &spec.workloads {
        if let WorkloadKind::Phased { phases, .. } = &w.kind {
            for p in phases {
                if p.until_s > 0.0 && p.until_s < spec.duration_s {
                    cuts.push(p.until_s);
                }
            }
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();
    let migrates = spec
        .app_aware
        .as_ref()
        .is_some_and(|a| !a.cap_instead_of_migrate);
    let mut segs = Vec::with_capacity(cuts.len().saturating_sub(1).max(1));
    for win in cuts.windows(2) {
        let (t0, t1) = (win[0], win[1]);
        let mut seg = Segment {
            start_s: t0,
            end_s: t1,
            little: Vec::new(),
            big: Vec::new(),
            gpu_active: false,
        };
        for w in &spec.workloads {
            let bound = match &w.kind {
                WorkloadKind::Phased { phases, .. } => phase_at(phases, t0),
                kind => workload_bound(kind)?,
            };
            let Some((threads, rate, gpu)) = bound else {
                continue;
            };
            seg.gpu_active |= gpu;
            match (w.cluster, migrates) {
                (_, true) => {
                    seg.little.push((threads, rate));
                    seg.big.push((threads, rate));
                }
                (ClusterSpec::Big, false) => seg.big.push((threads, rate)),
                (ClusterSpec::Little, false) => seg.little.push((threads, rate)),
            }
        }
        segs.push(seg);
    }
    if segs.is_empty() {
        segs.push(Segment {
            start_s: 0.0,
            end_s: 0.0,
            little: Vec::new(),
            big: Vec::new(),
            gpu_active: false,
        });
    }
    Ok(segs)
}

/// Largest busy-core count the demands can realize on `comp` at OPP
/// index `k`: each workload occupies at most `min(threads, rate /
/// per-core effective rate)` cores, and the cluster clips at its core
/// count.
fn cluster_util(comp: &mpt_soc::Component, demands: &[(f64, f64)], k: usize) -> f64 {
    let opp = comp.opps().get(k).expect("index in range");
    let per_core = comp.effective_rate(opp.frequency());
    let mut total = 0.0;
    for &(threads, rate) in demands {
        let by_rate = if per_core > 0.0 {
            rate / per_core
        } else {
            f64::INFINITY
        };
        total += threads.min(by_rate);
    }
    total.min(f64::from(comp.core_count()))
}

/// Thread-only utilization cap (frequency-independent), used for the
/// memory-utilization coupling.
fn thread_util(comp: &mpt_soc::Component, demands: &[(f64, f64)]) -> f64 {
    let total: f64 = demands.iter().map(|&(t, _)| t).sum();
    total.min(f64::from(comp.core_count()))
}

/// A per-node power interval, watts.
#[derive(Debug, Clone)]
struct NodePower {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

/// Bounds each component's injected power over a segment and sums into
/// per-node intervals. Lower bound: the unconditional static floors
/// (dynamic and leakage power are non-negative). Upper bound: dynamic
/// power maximized over the OPP table at the utilization cap (OPPs up to
/// `cap` for step-wise-capped components), plus leakage at the highest
/// voltage and the 125 °C sanity cap, plus the floor.
fn segment_power(
    platform: &Platform,
    seg: &Segment,
    n: usize,
    caps: Option<&[(ComponentId, usize)]>,
) -> NodePower {
    let thermal = platform.thermal_spec();
    let mut p = NodePower {
        lo: vec![0.0; n],
        hi: vec![0.0; n],
    };
    let cap_of =
        |id: ComponentId| caps.and_then(|c| c.iter().find(|(cid, _)| *cid == id).map(|(_, k)| *k));
    let comp = |id| platform.components().iter().find(|c| c.id() == id);
    let little_threads =
        comp(ComponentId::LittleCluster).map_or(0.0, |c| thread_util(c, &seg.little));
    let big_threads = comp(ComponentId::BigCluster).map_or(0.0, |c| thread_util(c, &seg.big));
    let gpu_util = f64::from(u8::from(seg.gpu_active));
    let t_cap = Celsius::new(MAX_SANE_TEMP_C).to_kelvin();
    for component in platform.components() {
        let id = component.id();
        let Some(node) = thermal.node_for_component(id) else {
            continue;
        };
        let opps = component.opps();
        let top = cap_of(id).map_or(opps.len() - 1, |k| k.min(opps.len() - 1));
        let mut dyn_hi = 0.0f64;
        for k in 0..=top {
            let util = match id {
                ComponentId::LittleCluster => cluster_util(component, &seg.little, k),
                ComponentId::BigCluster => cluster_util(component, &seg.big, k),
                ComponentId::Gpu => gpu_util,
                ComponentId::Memory => {
                    (0.04 * little_threads + 0.08 * big_threads + 0.5 * gpu_util).min(1.0)
                }
            };
            let opp = opps.get(k).expect("index in range");
            dyn_hi = dyn_hi.max(
                component
                    .power_params()
                    .dynamic_power(opp.voltage(), opp.frequency(), util)
                    .value(),
            );
        }
        let v_hi = opps.get(top).expect("index in range").voltage();
        let leak_hi = component
            .power_params()
            .leakage()
            .power(v_hi, t_cap)
            .value();
        let floor = component.power_params().static_floor().value();
        p.lo[node] += floor;
        p.hi[node] += floor + dyn_hi + leak_hi;
    }
    p
}

/// The certified per-node temperature envelope: guaranteed bounds on
/// every node's temperature at every base tick, in absolute Celsius.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sample spacing, seconds (the base tick).
    pub dt_s: f64,
    /// Node names, in thermal-spec order.
    pub node_names: Vec<String>,
    ambient_lo_c: f64,
    ambient_hi_c: f64,
    n: usize,
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Simulated time at which the upper bound escaped the 125 °C
    /// leakage cap, invalidating further propagation (`None` when the
    /// whole run is covered).
    pub truncated_at_s: Option<f64>,
}

impl Envelope {
    /// Number of time samples (ticks + 1, including the initial state).
    #[must_use]
    pub fn samples(&self) -> usize {
        self.lo.len() / self.n
    }

    /// Number of thermal nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// The ambient interval the bounds are anchored to, Celsius.
    #[must_use]
    pub fn ambient_c(&self) -> (f64, f64) {
        (self.ambient_lo_c, self.ambient_hi_c)
    }

    /// Guaranteed lower bound on node `node` at sample `sample`, Celsius.
    #[must_use]
    pub fn lower_c(&self, sample: usize, node: usize) -> f64 {
        self.lo[sample * self.n + node] + self.ambient_lo_c
    }

    /// Guaranteed upper bound on node `node` at sample `sample`, Celsius.
    #[must_use]
    pub fn upper_c(&self, sample: usize, node: usize) -> f64 {
        self.hi[sample * self.n + node] + self.ambient_hi_c
    }

    /// The hottest node's upper bound at a sample, Celsius.
    #[must_use]
    pub fn max_upper_c(&self, sample: usize) -> f64 {
        (0..self.n)
            .map(|i| self.upper_c(sample, i))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The hottest node's lower bound at a sample, Celsius. Any concrete
    /// trajectory's *maximum* temperature is at least this.
    #[must_use]
    pub fn max_lower_c(&self, sample: usize) -> f64 {
        (0..self.n)
            .map(|i| self.lower_c(sample, i))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// A finished verification: the MPT6xx diagnostics, the summary the
/// session report embeds, and the envelope itself (for containment
/// tests and plotting).
#[derive(Debug)]
pub struct Verification {
    /// MPT601/602/603/604 diagnostics for this scenario.
    pub report: Report,
    /// The plain-data verdict embedded in session/campaign reports.
    pub summary: VerificationSummary,
    /// The certified envelope.
    pub envelope: Envelope,
}

/// The trip threshold the envelope is certified against and its origin.
/// Resolution mirrors `mpt_core::fleet::trip_reference_c`: the fleet's
/// own `trip_c` wins, then the policy's reference; without any, the
/// 125 °C model-sanity cap is the only provable limit.
fn resolve_trip(spec: &ScenarioSpec, fleet: Option<&FleetSpec>) -> (f64, &'static str) {
    if let Some(t) = fleet.and_then(|f| f.trip_c) {
        return (t, "fleet trip_c");
    }
    match &spec.thermal {
        ThermalPolicySpec::StepWise { trips_c, .. } => trips_c
            .iter()
            .copied()
            .reduce(f64::min)
            .map_or((MAX_SANE_TEMP_C, "sanity cap"), |t| (t, "step_wise trips")),
        ThermalPolicySpec::Ipa { control_c, .. } => (*control_c, "ipa control_c"),
        ThermalPolicySpec::Disabled => (MAX_SANE_TEMP_C, "sanity cap"),
    }
}

/// Steady-state deviation `G⁻¹·p` of the full conductance matrix, or
/// `None` if it cannot be solved.
fn steady_deviation(lti: &ThermalLti, p: &[f64]) -> Option<Vec<f64>> {
    linalg::solve(Mat::from_rows(&lti.g_full), p.to_vec())
}

/// The thermally-safe sustained power budget: scales the worst-case
/// power *shape* until the hottest steady-state node touches the trip,
/// and reports the total watts at that scale.
fn sustained_budget(lti: &ThermalLti, shape_hi: &[f64], trip_c: f64, amb_hi_c: f64) -> Option<f64> {
    let total: f64 = shape_hi.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let d = steady_deviation(lti, shape_hi)?;
    let dmax = d.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if dmax <= 0.0 {
        return None;
    }
    let headroom = trip_c - amb_hi_c;
    if headroom <= 0.0 {
        return Some(0.0);
    }
    Some(total * headroom / dmax)
}

/// MPT604: searches the step-wise governor's abstract transition graph
/// for a throttle/release limit cycle. At cooling state `s` the governor
/// caps the GPU at OPP `len-1-min(s, 3)` and the big cluster at
/// `len-1-min(s, 5)`; state `s` has an up-edge when the worst-case
/// steady temperature at its caps still exceeds the lowest trip, and a
/// down-edge when it falls below trip minus hysteresis. An up-edge at
/// `s` together with a down-edge at `s+1` is a cycle: the governor
/// provably oscillates between the two caps if the run settles there.
fn stepwise_limit_cycle(
    platform: &Platform,
    lti: &ThermalLti,
    segs: &[Segment],
    trip_c: f64,
    amb_hi_c: f64,
) -> Option<(usize, f64, f64)> {
    let n = lti.len();
    let max_state = STEPWISE_GPU_LIMIT.max(STEPWISE_BIG_LIMIT);
    let caps_at = |s: usize| {
        vec![
            (
                ComponentId::Gpu,
                gpu_cap_index(platform, s.min(STEPWISE_GPU_LIMIT)),
            ),
            (
                ComponentId::BigCluster,
                big_cap_index(platform, s.min(STEPWISE_BIG_LIMIT)),
            ),
        ]
    };
    let steady_at = |s: usize| -> Option<f64> {
        let caps = caps_at(s);
        let mut worst = f64::NEG_INFINITY;
        for seg in segs {
            let p = segment_power(platform, seg, n, Some(&caps));
            let d = steady_deviation(lti, &p.hi)?;
            let peak = d.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            worst = worst.max(peak + amb_hi_c);
        }
        Some(worst)
    };
    let temps: Vec<f64> = (0..=max_state).map(steady_at).collect::<Option<Vec<_>>>()?;
    for s in 0..max_state {
        let up = temps[s] > trip_c;
        let down = temps[s + 1] < trip_c - HYSTERESIS_C;
        if up && down {
            return Some((s, temps[s], temps[s + 1]));
        }
    }
    None
}

fn gpu_cap_index(platform: &Platform, steps: usize) -> usize {
    cap_index(platform, ComponentId::Gpu, steps)
}

fn big_cap_index(platform: &Platform, steps: usize) -> usize {
    cap_index(platform, ComponentId::BigCluster, steps)
}

fn cap_index(platform: &Platform, id: ComponentId, steps: usize) -> usize {
    platform
        .components()
        .iter()
        .find(|c| c.id() == id)
        .map_or(0, |c| (c.opps().len() - 1).saturating_sub(steps))
}

/// Verifies one plain scenario. See [`verify_cell`].
///
/// # Errors
///
/// A human-readable message when the platform has no LTI form or a
/// workload name is unknown (conditions other lints already flag).
pub fn verify_scenario(spec: &ScenarioSpec, origin: &str) -> Result<Verification, String> {
    verify_cell(spec, None, origin)
}

/// Verifies one scenario, optionally widened to a fleet's full
/// `ParamJitter` ranges: propagates the guaranteed temperature envelope,
/// resolves the trip reference, and emits the MPT601/602/603 verdict
/// plus the MPT604 limit-cycle check and the sustained power budget.
///
/// # Errors
///
/// A human-readable message when the platform has no LTI form or a
/// workload name is unknown.
pub fn verify_cell(
    spec: &ScenarioSpec,
    fleet: Option<&FleetSpec>,
    origin: &str,
) -> Result<Verification, String> {
    let platform = spec.platform.build();
    let thermal = platform.thermal_spec();
    let lti = thermal
        .lti()
        .map_err(|e| format!("thermal network has no LTI form: {e}"))?;
    let n = lti.len();
    let disc = Discretization::build(&lti, BASE_DT_S)
        .map_err(|e| format!("cannot discretize thermal network: {e}"))?;
    let segs = segments(spec)?;
    let seg_powers: Vec<NodePower> = segs
        .iter()
        .map(|s| segment_power(&platform, s, n, None))
        .collect();
    // The unscaled worst-case power shape: the sustained budget is a
    // property of the platform and workload mix, not of the jitter box.
    let mut shape = vec![0.0_f64; n];
    for p in &seg_powers {
        for (s, &hi) in shape.iter_mut().zip(&p.hi) {
            *s = s.max(hi);
        }
    }

    // The ambient and initial-state intervals, absolute Celsius.
    let base_amb = lti.ambient.to_celsius().value();
    let (amb_lo, amb_hi) = fleet.map_or((base_amb, base_amb), |f| {
        let (o_lo, o_hi) = f.ambient_c.bounds();
        (base_amb + o_lo, base_amb + o_hi)
    });
    let (x0_lo, x0_hi) = spec
        .initial_temperature_c
        .map_or((0.0, 0.0), |t0| (t0 - amb_hi, t0 - amb_lo));

    // Fleet cells inject `trace × leakage_scale × workload_mix`, with
    // per-device circular phase offsets — any segment's power can appear
    // at any time, so the envelope uses the hull over segments scaled by
    // the full jitter box.
    let (powers, seg_bounds): (Vec<NodePower>, Vec<(f64, f64)>) = if let Some(f) = fleet {
        let scale = linalg::interval_mul(f.leakage_scale.bounds(), f.workload_mix.bounds());
        let mut hull = NodePower {
            lo: vec![f64::INFINITY; n],
            hi: vec![f64::NEG_INFINITY; n],
        };
        for p in &seg_powers {
            for i in 0..n {
                hull.lo[i] = hull.lo[i].min(p.lo[i]);
                hull.hi[i] = hull.hi[i].max(p.hi[i]);
            }
        }
        for i in 0..n {
            let (lo, hi) = linalg::interval_mul((hull.lo[i], hull.hi[i]), scale);
            hull.lo[i] = lo;
            hull.hi[i] = hi;
        }
        (vec![hull], vec![(0.0, spec.duration_s)])
    } else {
        (
            seg_powers,
            segs.iter().map(|s| (s.start_s, s.end_s)).collect(),
        )
    };

    // Propagate the envelope tick by tick.
    let ticks = (spec.duration_s / BASE_DT_S).round().max(0.0) as usize;
    let mut lo = vec![x0_lo; n];
    let mut hi = vec![x0_hi; n];
    let mut env = Envelope {
        dt_s: BASE_DT_S,
        node_names: thermal.nodes.iter().map(|nd| nd.name.clone()).collect(),
        ambient_lo_c: amb_lo,
        ambient_hi_c: amb_hi,
        n,
        lo: Vec::with_capacity((ticks + 1) * n),
        hi: Vec::with_capacity((ticks + 1) * n),
        truncated_at_s: None,
    };
    env.lo.extend_from_slice(&lo);
    env.hi.extend_from_slice(&hi);
    let mut seg_idx = 0usize;
    for k in 0..ticks {
        let t = k as f64 * BASE_DT_S;
        while seg_idx + 1 < seg_bounds.len() && t >= seg_bounds[seg_idx].1 - 1e-12 {
            seg_idx += 1;
        }
        let p = &powers[seg_idx];
        disc.step_interval(&mut lo, &mut hi, &p.lo, &p.hi);
        env.lo.extend_from_slice(&lo);
        env.hi.extend_from_slice(&hi);
        let peak = hi.iter().copied().fold(f64::NEG_INFINITY, f64::max) + amb_hi;
        if peak > MAX_SANE_TEMP_C {
            env.truncated_at_s = Some((k + 1) as f64 * BASE_DT_S);
            break;
        }
    }

    // The verdict scan.
    let (trip_c, reference) = resolve_trip(spec, fleet);
    let mut peak_upper = f64::NEG_INFINITY;
    let mut peak_lower = f64::NEG_INFINITY;
    let mut first_straddle = None;
    let mut first_guaranteed = None;
    for s in 0..env.samples() {
        let max_hi = env.max_upper_c(s);
        let max_lo = env.max_lower_c(s);
        peak_upper = peak_upper.max(max_hi);
        peak_lower = peak_lower.max(max_lo);
        let t = s as f64 * BASE_DT_S;
        if max_hi >= trip_c && first_straddle.is_none() {
            first_straddle = Some(t);
        }
        if max_lo >= trip_c && first_guaranteed.is_none() {
            first_guaranteed = Some(t);
        }
    }

    let budget = sustained_budget(&lti, &shape, trip_c, amb_hi);

    let mut report = Report::default();
    report.checks_run += 1;
    let budget_note = budget.map_or(String::new(), |b| {
        format!("; sustained-safe power budget {b:.2} W")
    });
    if let Some(t) = first_guaranteed {
        report.diagnostics.push(Diagnostic::new(
            Code::GuaranteedTrip,
            origin,
            format!(
                "guaranteed trip: even the most optimistic trajectory reaches the \
                 {trip_c:.1} C reference ({reference}) by t = {t:.2} s \
                 (envelope lower bound peaks at {peak_lower:.2} C){budget_note}"
            ),
        ));
    } else if let Some(t) = env.truncated_at_s {
        report.diagnostics.push(Diagnostic::new(
            Code::PossibleTrip,
            origin,
            format!(
                "cannot certify: the temperature envelope escapes the \
                 {MAX_SANE_TEMP_C:.0} C leakage-model cap at t = {t:.2} s; \
                 reference {trip_c:.1} C ({reference}){budget_note}"
            ),
        ));
    } else if peak_upper >= trip_c - DEFAULT_MARGIN_C {
        let when = first_straddle.map_or_else(
            || {
                format!(
                    "stays below the reference but within the {DEFAULT_MARGIN_C:.1} C \
                     certificate margin"
                )
            },
            |t| format!("first possible crossing at t = {t:.2} s"),
        );
        report.diagnostics.push(Diagnostic::new(
            Code::PossibleTrip,
            origin,
            format!(
                "possible trip: envelope [{peak_lower:.2}, {peak_upper:.2}] C straddles the \
                 {trip_c:.1} C reference ({reference}); {when}{budget_note}"
            ),
        ));
    } else {
        report.diagnostics.push(Diagnostic::new(
            Code::NoTripCertificate,
            origin,
            format!(
                "certified trip-free: envelope upper bound peaks at {peak_upper:.2} C, \
                 {:.2} C below the {trip_c:.1} C reference ({reference}){budget_note}",
                trip_c - peak_upper
            ),
        ));
    }

    let mut limit_cycle = false;
    if matches!(spec.thermal, ThermalPolicySpec::StepWise { .. }) {
        report.checks_run += 1;
        if let Some((s, t_hot, t_cool)) =
            stepwise_limit_cycle(&platform, &lti, &segs, trip_c, amb_hi)
        {
            limit_cycle = true;
            report.diagnostics.push(Diagnostic::new(
                Code::GovernorLimitCycle,
                origin,
                format!(
                    "step-wise limit-cycle risk: worst-case steady state at cooling level {s} \
                     is {t_hot:.2} C (above the {trip_c:.1} C trip) but level {} cools to \
                     {t_cool:.2} C (below trip - {HYSTERESIS_C:.1} C hysteresis) — the governor \
                     oscillates between the two caps",
                    s + 1
                ),
            ));
        }
    }

    let verdict = report
        .diagnostics
        .iter()
        .map(|d| d.code)
        .find(|c| {
            matches!(
                c,
                Code::NoTripCertificate | Code::PossibleTrip | Code::GuaranteedTrip
            )
        })
        .expect("one verdict diagnostic is always emitted");
    let summary = VerificationSummary {
        verdict: verdict.code().to_owned(),
        reference: reference.to_owned(),
        trip_c,
        margin_c: DEFAULT_MARGIN_C,
        peak_upper_c: peak_upper,
        peak_lower_c: peak_lower,
        first_straddle_s: first_straddle,
        first_guaranteed_s: first_guaranteed,
        limit_cycle,
        sustained_budget_w: budget,
        devices: fleet.map_or(1, |f| f.devices),
        ticks,
    };
    Ok(Verification {
        report,
        summary,
        envelope: env,
    })
}

/// Verifies every cell of a campaign (the fleet block widened to its
/// full jitter ranges), returning the merged diagnostics and the
/// per-cell verdicts in expansion order.
///
/// # Errors
///
/// A human-readable message when the campaign cannot expand or a cell
/// cannot be verified.
pub fn verify_campaign(
    spec: &CampaignSpec,
    origin: &str,
) -> Result<(Report, Vec<CellVerification>), String> {
    let cells = spec.expand().map_err(|e| e.to_string())?;
    let mut report = Report::default();
    let mut verdicts = Vec::with_capacity(cells.len());
    for cell in &cells {
        let shown = if cell.label.is_empty() {
            origin.to_owned()
        } else {
            format!("{origin}[{}]", cell.label)
        };
        let v = verify_cell(&cell.scenario, cell.fleet.as_ref(), &shown)?;
        report.merge(v.report);
        verdicts.push(CellVerification {
            label: cell.label.clone(),
            summary: v.summary,
        });
    }
    Ok((report, verdicts))
}

/// Verifies a scenario JSON document, folding parse and verification
/// failures into the report (for the `mpt_lint --verify` path).
#[must_use]
pub fn verify_scenario_json(json: &str, path: &str) -> Report {
    let mut r = Report::default();
    r.checks_run += 1;
    match serde_json::from_str::<ScenarioSpec>(json) {
        Ok(spec) => match verify_scenario(&spec, path) {
            Ok(v) => r.merge(v.report),
            Err(msg) => r.diagnostics.push(Diagnostic::new(
                Code::ScenarioShape,
                path,
                format!("cannot verify: {msg}"),
            )),
        },
        Err(e) => r.diagnostics.push(Diagnostic::new(
            Code::ParseFailure,
            path,
            format!("scenario does not parse: {e}"),
        )),
    }
    r
}

/// Verifies a campaign JSON document, folding parse and verification
/// failures into the report (for the `mpt_lint --verify` path).
#[must_use]
pub fn verify_campaign_json(json: &str, path: &str) -> Report {
    let mut r = Report::default();
    r.checks_run += 1;
    match serde_json::from_str::<CampaignSpec>(json) {
        Ok(spec) => match verify_campaign(&spec, path) {
            Ok((report, _)) => r.merge(report),
            Err(msg) => r.diagnostics.push(Diagnostic::new(
                Code::ScenarioShape,
                path,
                format!("cannot verify: {msg}"),
            )),
        },
        Err(e) => r.diagnostics.push(Diagnostic::new(
            Code::ParseFailure,
            path,
            format!("campaign does not parse: {e}"),
        )),
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(json: &str) -> ScenarioSpec {
        serde_json::from_str(json).expect("spec parses")
    }

    #[test]
    fn idle_scenario_earns_a_certificate() {
        let s = spec(
            r#"{ "platform": "exynos5422", "duration_s": 5.0,
                 "thermal": { "policy": "step_wise", "trips_c": [90.0], "period_s": 1.0 },
                 "workloads": [
                   { "kind": "phased", "name": "idle", "phases": [
                     { "until_s": 5.0, "rate": 0.0 } ] } ] }"#,
        );
        let v = verify_scenario(&s, "idle.json").expect("verifies");
        assert_eq!(v.summary.verdict, "MPT601");
        assert!(v.summary.peak_upper_c < 90.0 - DEFAULT_MARGIN_C);
        assert_eq!(v.report.infos(), 1);
        assert_eq!(v.report.errors(), 0);
    }

    #[test]
    fn impossible_trip_reference_is_guaranteed() {
        // A trip below ambient with a warm start: every trajectory is
        // above it from tick 0.
        let s = spec(
            r#"{ "platform": "snapdragon810", "duration_s": 1.0,
                 "initial_temperature_c": 35.0,
                 "thermal": { "policy": "step_wise", "trips_c": [20.0], "period_s": 1.0 },
                 "workloads": [ { "kind": "basic_math" } ] }"#,
        );
        let v = verify_scenario(&s, "hot.json").expect("verifies");
        assert_eq!(v.summary.verdict, "MPT603");
        assert_eq!(v.summary.first_guaranteed_s, Some(0.0));
        assert_eq!(v.report.errors(), 1);
    }

    #[test]
    fn envelope_brackets_initial_state_exactly_without_fleet() {
        let s = spec(
            r#"{ "platform": "snapdragon810", "duration_s": 1.0,
                 "initial_temperature_c": 42.0,
                 "workloads": [ { "kind": "basic_math" } ] }"#,
        );
        let v = verify_scenario(&s, "t0.json").expect("verifies");
        let env = &v.envelope;
        for node in 0..env.nodes() {
            assert!((env.lower_c(0, node) - 42.0).abs() < 1e-9);
            assert!((env.upper_c(0, node) - 42.0).abs() < 1e-9);
        }
        // Bounds stay ordered and finite through the run.
        for sample in 0..env.samples() {
            for node in 0..env.nodes() {
                let (lo, hi) = (env.lower_c(sample, node), env.upper_c(sample, node));
                assert!(lo.is_finite() && hi.is_finite());
                assert!(lo <= hi, "sample {sample} node {node}: {lo} > {hi}");
            }
        }
    }

    #[test]
    fn fleet_jitter_widens_the_envelope() {
        let s = spec(
            r#"{ "platform": "snapdragon810", "duration_s": 2.0,
                 "initial_temperature_c": 35.0,
                 "thermal": { "policy": "step_wise", "trips_c": [41.0], "period_s": 1.0 },
                 "workloads": [ { "kind": "app", "name": "paper_io", "seed": 1 } ] }"#,
        );
        let fleet: FleetSpec = serde_json::from_str(
            r#"{ "devices": 100,
                 "leakage_scale": { "dist": "uniform", "min": 0.9, "max": 1.3 },
                 "ambient_c": { "dist": "uniform", "min": -2.0, "max": 5.0 },
                 "workload_mix": { "dist": "uniform", "min": 0.8, "max": 1.2 } }"#,
        )
        .expect("fleet parses");
        let plain = verify_scenario(&s, "plain").expect("verifies");
        let wide = verify_cell(&s, Some(&fleet), "fleet").expect("verifies");
        assert!(wide.summary.peak_upper_c > plain.summary.peak_upper_c);
        assert_eq!(wide.summary.devices, 100);
        let last = wide.envelope.samples() - 1;
        for node in 0..wide.envelope.nodes() {
            assert!(wide.envelope.upper_c(last, node) >= plain.envelope.upper_c(last, node));
            assert!(wide.envelope.lower_c(last, node) <= plain.envelope.lower_c(last, node));
        }
    }

    #[test]
    fn sustained_budget_scales_with_the_trip() {
        let cool = spec(
            r#"{ "platform": "exynos5422", "duration_s": 1.0,
                 "thermal": { "policy": "ipa", "control_c": 70.0,
                              "sustainable_w": 2.6, "gpu_weight": 1.2 },
                 "workloads": [ { "kind": "basic_math" } ] }"#,
        );
        let hot = spec(
            r#"{ "platform": "exynos5422", "duration_s": 1.0,
                 "thermal": { "policy": "ipa", "control_c": 95.0,
                              "sustainable_w": 2.6, "gpu_weight": 1.2 },
                 "workloads": [ { "kind": "basic_math" } ] }"#,
        );
        let b_cool = verify_scenario(&cool, "c")
            .unwrap()
            .summary
            .sustained_budget_w;
        let b_hot = verify_scenario(&hot, "h")
            .unwrap()
            .summary
            .sustained_budget_w;
        let (b_cool, b_hot) = (b_cool.expect("budget"), b_hot.expect("budget"));
        assert!(b_hot > b_cool, "{b_hot} vs {b_cool}");
        // Linear in headroom: 70 °C/95 °C over a 25 °C ambient.
        assert!((b_hot / b_cool - 70.0 / 45.0).abs() < 1e-6);
    }

    #[test]
    fn campaign_verification_covers_every_cell() {
        let json = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/nexus_trip_sweep.campaign.json"
        ))
        .expect("campaign readable");
        let campaign: CampaignSpec = serde_json::from_str(&json).expect("parses");
        let (report, verdicts) =
            verify_campaign(&campaign, "nexus_trip_sweep.campaign.json").expect("verifies");
        assert_eq!(verdicts.len(), campaign.expand().unwrap().len());
        assert_eq!(report.errors(), 0, "{}", report.render_text());
        for v in &verdicts {
            assert!(!v.label.is_empty());
            assert!(v.summary.ticks > 0);
        }
    }
}
