//! The diagnostic registry: stable codes, severities and rendering.
//!
//! Every check in this crate reports through a [`Diagnostic`] carrying a
//! stable `MPTxxx` code. Codes are append-only: once shipped, a code's
//! meaning never changes, so CI logs and suppression lists stay valid
//! across releases. The numbering is grouped by analysis family:
//!
//! - `MPT0xx` — model analysis (platforms, OPP tables, thermal networks),
//! - `MPT1xx` — config analysis (scenarios, campaigns, alert files),
//! - `MPT2xx` — source analysis (determinism scan of the sim crates),
//! - `MPT3xx` — stepping-engine analysis (event-engine compatibility,
//!   phase schedules),
//! - `MPT4xx` — telemetry-query analysis (embedded `queries` against the
//!   static columnar schema),
//! - `MPT5xx` — fleet analysis (population specs and jitter ranges),
//! - `MPT6xx` — reachability verification (certified temperature
//!   envelopes from interval abstract interpretation of `(Ad, Bd)`).

use std::fmt;

/// How bad a finding is.
///
/// Errors make `mpt_lint` exit non-zero (and make `run_scenario` refuse
/// to simulate); warnings are advisory unless `--deny-warnings` is set;
/// infos are positive findings (certificates) and never fail a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A positive finding — a certificate the verifier proved, reported
    /// for the record. Never fails the run, even under `--deny-warnings`.
    Info,
    /// Suspicious but not certainly wrong; does not fail the run.
    Warning,
    /// A defect that would produce wrong or undefined results.
    Error,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// MPT001: OPP frequencies are not strictly increasing.
    OppFrequencyOrder,
    /// MPT002: OPP voltage decreases as frequency rises.
    OppVoltageMonotonicity,
    /// MPT003: max-utilization OPP power is not strictly increasing.
    OppPowerMonotonicity,
    /// MPT004: a thermal node has a non-positive heat capacity.
    NonPositiveHeatCapacity,
    /// MPT005: a power coefficient (ceff, alpha, beta, floor) is invalid.
    InvalidPowerCoefficient,
    /// MPT006: the conductance matrix is asymmetric or has an invalid entry.
    InvalidConductance,
    /// MPT007: the thermal network is disconnected or has no ambient path.
    DisconnectedNetwork,
    /// MPT008: the assembled thermal A-matrix is not Hurwitz.
    NotHurwitz,
    /// MPT009: no stable power-temperature fixed point at an operating point.
    NoStableFixedPoint,
    /// MPT010: a temperature sensor references an unknown thermal node.
    DanglingSensorNode,
    /// MPT011: a cross-reference between platform parts does not resolve.
    DanglingComponentRef,
    /// MPT101: a file is not valid JSON or does not parse as its spec type.
    ParseFailure,
    /// MPT102: a scenario's overall shape is invalid (duration, workloads).
    ScenarioShape,
    /// MPT103: a workload spec cannot be built.
    InvalidWorkload,
    /// MPT104: `control_sensor` names no sensor on the platform.
    DanglingControlSensor,
    /// MPT105: a trip point or policy parameter is outside the sane range.
    ParameterOutOfRange,
    /// MPT106: `solver` names no registered thermal solver.
    UnknownSolver,
    /// MPT107: an alert rule can never fire or has invalid parameters.
    UnreachableAlert,
    /// MPT108: a campaign sweep axis is empty, duplicated or inconsistent.
    InvalidSweepAxis,
    /// MPT201: a wall-clock read outside the sanctioned clock helper.
    WallClockRead,
    /// MPT202: a nondeterministically seeded RNG.
    NondeterministicRng,
    /// MPT203: iteration over an unordered container.
    UnorderedContainer,
    /// MPT301: `engine` names no stepping engine, or the event engine is
    /// combined with a feature it does not support.
    InvalidEngine,
    /// MPT302: a phased workload's schedule is not strictly increasing.
    NonMonotonicPhases,
    /// MPT401: a telemetry query is malformed or names a channel the
    /// scenario's columnar schema does not record.
    QueryUnknownChannel,
    /// MPT402: a telemetry query groups or filters on a key that is not
    /// a sweep axis (or axis-like dictionary column) of the spec.
    QueryNonAxisKey,
    /// MPT501: a campaign's `fleet` block is invalid (device count,
    /// jitter ranges, trip reference).
    InvalidFleet,
    /// MPT502: a fleet jitter range can realize non-physical device
    /// parameters (non-positive leakage scale, negative workload mix).
    NonPhysicalFleetJitter,
    /// MPT601: no-trip certificate — the certified upper temperature
    /// envelope stays below the trip reference with margin for the whole
    /// run (every device of a fleet population included).
    NoTripCertificate,
    /// MPT602: possible trip — the certified envelope straddles the trip
    /// reference, so some realization may throttle.
    PossibleTrip,
    /// MPT603: guaranteed trip — even the *lower* envelope bound crosses
    /// the trip reference; every realization throttles.
    GuaranteedTrip,
    /// MPT604: governor limit-cycle risk — the abstract
    /// `(cooling state, steady-state interval)` transition graph of the
    /// step-wise governor contains a throttle/release cycle.
    GovernorLimitCycle,
}

impl Code {
    /// Every code, in numeric order (used by `--list-codes`).
    pub const ALL: [Code; 32] = [
        Code::OppFrequencyOrder,
        Code::OppVoltageMonotonicity,
        Code::OppPowerMonotonicity,
        Code::NonPositiveHeatCapacity,
        Code::InvalidPowerCoefficient,
        Code::InvalidConductance,
        Code::DisconnectedNetwork,
        Code::NotHurwitz,
        Code::NoStableFixedPoint,
        Code::DanglingSensorNode,
        Code::DanglingComponentRef,
        Code::ParseFailure,
        Code::ScenarioShape,
        Code::InvalidWorkload,
        Code::DanglingControlSensor,
        Code::ParameterOutOfRange,
        Code::UnknownSolver,
        Code::UnreachableAlert,
        Code::InvalidSweepAxis,
        Code::WallClockRead,
        Code::NondeterministicRng,
        Code::UnorderedContainer,
        Code::InvalidEngine,
        Code::NonMonotonicPhases,
        Code::QueryUnknownChannel,
        Code::QueryNonAxisKey,
        Code::InvalidFleet,
        Code::NonPhysicalFleetJitter,
        Code::NoTripCertificate,
        Code::PossibleTrip,
        Code::GuaranteedTrip,
        Code::GovernorLimitCycle,
    ];

    /// The stable `MPTxxx` identifier.
    #[must_use]
    pub const fn code(self) -> &'static str {
        match self {
            Code::OppFrequencyOrder => "MPT001",
            Code::OppVoltageMonotonicity => "MPT002",
            Code::OppPowerMonotonicity => "MPT003",
            Code::NonPositiveHeatCapacity => "MPT004",
            Code::InvalidPowerCoefficient => "MPT005",
            Code::InvalidConductance => "MPT006",
            Code::DisconnectedNetwork => "MPT007",
            Code::NotHurwitz => "MPT008",
            Code::NoStableFixedPoint => "MPT009",
            Code::DanglingSensorNode => "MPT010",
            Code::DanglingComponentRef => "MPT011",
            Code::ParseFailure => "MPT101",
            Code::ScenarioShape => "MPT102",
            Code::InvalidWorkload => "MPT103",
            Code::DanglingControlSensor => "MPT104",
            Code::ParameterOutOfRange => "MPT105",
            Code::UnknownSolver => "MPT106",
            Code::UnreachableAlert => "MPT107",
            Code::InvalidSweepAxis => "MPT108",
            Code::WallClockRead => "MPT201",
            Code::NondeterministicRng => "MPT202",
            Code::UnorderedContainer => "MPT203",
            Code::InvalidEngine => "MPT301",
            Code::NonMonotonicPhases => "MPT302",
            Code::QueryUnknownChannel => "MPT401",
            Code::QueryNonAxisKey => "MPT402",
            Code::InvalidFleet => "MPT501",
            Code::NonPhysicalFleetJitter => "MPT502",
            Code::NoTripCertificate => "MPT601",
            Code::PossibleTrip => "MPT602",
            Code::GuaranteedTrip => "MPT603",
            Code::GovernorLimitCycle => "MPT604",
        }
    }

    /// Default severity for findings of this code.
    ///
    /// [`Code::NoStableFixedPoint`] defaults to [`Severity::Warning`]
    /// because runaway at *max* power is a real property of real phones
    /// (the paper's Section IV): throttling exists precisely to handle
    /// it. The model check escalates it to an error when even the idle
    /// floor has no fixed point. [`Code::UnreachableAlert`] is likewise a
    /// warning when a rule is merely vacuous but an error when its
    /// parameters are invalid.
    #[must_use]
    pub const fn default_severity(self) -> Severity {
        match self {
            Code::NoStableFixedPoint
            | Code::UnreachableAlert
            | Code::PossibleTrip
            | Code::GovernorLimitCycle => Severity::Warning,
            Code::NoTripCertificate => Severity::Info,
            _ => Severity::Error,
        }
    }

    /// One-line description (used by `--list-codes` and docs).
    #[must_use]
    pub const fn title(self) -> &'static str {
        match self {
            Code::OppFrequencyOrder => "OPP frequencies must be strictly increasing",
            Code::OppVoltageMonotonicity => "OPP voltages must not decrease with frequency",
            Code::OppPowerMonotonicity => "max-utilization OPP power must be strictly increasing",
            Code::NonPositiveHeatCapacity => "thermal node heat capacity must be positive",
            Code::InvalidPowerCoefficient => "power-model coefficient out of range",
            Code::InvalidConductance => "conductance matrix asymmetric or entry invalid",
            Code::DisconnectedNetwork => "thermal network disconnected or no ambient path",
            Code::NotHurwitz => "thermal A-matrix is not Hurwitz (unstable dynamics)",
            Code::NoStableFixedPoint => "no stable power-temperature fixed point",
            Code::DanglingSensorNode => "temperature sensor reads an unknown thermal node",
            Code::DanglingComponentRef => "platform cross-reference does not resolve",
            Code::ParseFailure => "file is not valid JSON for its spec type",
            Code::ScenarioShape => "scenario shape invalid (duration, workloads)",
            Code::InvalidWorkload => "workload spec cannot be built",
            Code::DanglingControlSensor => "control_sensor names no platform sensor",
            Code::ParameterOutOfRange => "trip point or policy parameter out of range",
            Code::UnknownSolver => "solver names no registered thermal solver",
            Code::UnreachableAlert => "alert rule invalid or can never fire",
            Code::InvalidSweepAxis => "campaign sweep axis empty, duplicated or inconsistent",
            Code::WallClockRead => "wall-clock read outside mpt_obs::clock",
            Code::NondeterministicRng => "nondeterministically seeded RNG",
            Code::UnorderedContainer => "iteration-order-sensitive unordered container",
            Code::InvalidEngine => "engine unknown or incompatible with the event stepper",
            Code::NonMonotonicPhases => "phased workload schedule must be strictly increasing",
            Code::QueryUnknownChannel => "query malformed or names an unrecorded channel",
            Code::QueryNonAxisKey => "query groups or filters on a non-axis key",
            Code::InvalidFleet => "campaign fleet block invalid (devices, jitter, trip)",
            Code::NonPhysicalFleetJitter => {
                "fleet jitter range can realize non-physical device parameters"
            }
            Code::NoTripCertificate => {
                "certified: the temperature envelope stays below trip with margin"
            }
            Code::PossibleTrip => "certified envelope straddles the trip reference",
            Code::GuaranteedTrip => "even the lower envelope bound crosses the trip reference",
            Code::GovernorLimitCycle => "step-wise governor throttle/release limit-cycle risk",
        }
    }

    /// A fix hint attached to every finding of this code.
    #[must_use]
    pub const fn hint(self) -> &'static str {
        match self {
            Code::OppFrequencyOrder => "sort the OPP table by frequency and remove duplicates",
            Code::OppVoltageMonotonicity => {
                "higher frequencies need equal or higher supply voltage; fix the voltage column"
            }
            Code::OppPowerMonotonicity => {
                "a higher OPP that draws less power dominates the table; check ceff and voltages"
            }
            Code::NonPositiveHeatCapacity => "set heat_capacity to a positive, finite J/K value",
            Code::InvalidPowerCoefficient => {
                "ceff, alpha and static_floor must be finite and >= 0; beta finite and > 0"
            }
            Code::InvalidConductance => {
                "conductances must be finite, positive and symmetric (g[i][j] == g[j][i])"
            }
            Code::DisconnectedNetwork => {
                "every node needs a coupling path to the rest and some node an ambient path"
            }
            Code::NotHurwitz => {
                "check for negative conductances; a passive RC network is always Hurwitz"
            }
            Code::NoStableFixedPoint => {
                "leakage exceeds what the network can reject; a throttling policy is mandatory"
            }
            Code::DanglingSensorNode => "point thermal_node at a node declared in thermal.nodes",
            Code::DanglingComponentRef => {
                "reference only components declared in the platform's component list"
            }
            Code::ParseFailure => "fix the JSON syntax or match the documented spec schema",
            Code::ScenarioShape => "duration_s must be positive and workloads non-empty",
            Code::InvalidWorkload => "see the workload registry for valid kinds and clusters",
            Code::DanglingControlSensor => "use one of the platform's temperature_sensors names",
            Code::ParameterOutOfRange => {
                "temperatures must lie in (ambient, 125] C and rates/periods must be positive"
            }
            Code::UnknownSolver => "valid solvers: exact_lti, forward_euler",
            Code::UnreachableAlert => {
                "fix the rule parameters or add the mechanism (workload/policy) it observes"
            }
            Code::InvalidSweepAxis => {
                "remove duplicate axis entries; trips_c sweeps need a step_wise base policy"
            }
            Code::WallClockRead => {
                "route wall-clock reads through mpt_obs::clock (or extend determinism.allow)"
            }
            Code::NondeterministicRng => "seed RNGs from the scenario/campaign seed",
            Code::UnorderedContainer => "use BTreeMap/BTreeSet for deterministic iteration",
            Code::InvalidEngine => "valid engines: fixed, event",
            Code::NonMonotonicPhases => {
                "order phases by until_s, strictly increasing and starting above zero"
            }
            Code::QueryUnknownChannel => {
                "use `agg(channel) [by axes] [where axis=value]` over the channels the \
                 platform records (time_s, temp_*_c, max_temp_c, power_*_w, total_power_w)"
            }
            Code::QueryNonAxisKey => {
                "group or filter only on the campaign's swept axes (platform, thermal, \
                 workloads, trips, ambient) or per-cell metric axes"
            }
            Code::InvalidFleet => {
                "devices must be positive, jitter ranges finite with min <= max and \
                 std >= 0, and trip_c (when set) a plausible Celsius trip point"
            }
            Code::NonPhysicalFleetJitter => {
                "tighten the jitter so leakage_scale stays positive and workload_mix \
                 non-negative (normal jitters are judged at 6 sigma)"
            }
            Code::NoTripCertificate => {
                "nothing to fix: this run cannot throttle; the budget in the message is \
                 the thermally-safe sustained power"
            }
            Code::PossibleTrip => {
                "lower the workload, raise the trip, or accept throttling; the first \
                 straddle time bounds when it can start"
            }
            Code::GuaranteedTrip => {
                "this configuration always throttles: reduce sustained power below the \
                 reported budget or raise the trip reference"
            }
            Code::GovernorLimitCycle => {
                "widen the trip hysteresis or add intermediate OPPs so a throttle step \
                 does not overshoot the release band"
            }
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: a code, where it was found, and a specific message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Effective severity (defaults to the code's, may be escalated).
    pub severity: Severity,
    /// File path or logical origin (`builtin:snapdragon810`).
    pub path: String,
    /// 1-based line number for source findings, `None` for spec findings.
    pub line: Option<usize>,
    /// The specific finding, with offending values inlined.
    pub message: String,
}

impl Diagnostic {
    /// Creates a finding with the code's default severity.
    #[must_use]
    pub fn new(code: Code, path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: code.default_severity(),
            path: path.into(),
            line: None,
            message: message.into(),
        }
    }

    /// Attaches a 1-based line number (source findings).
    #[must_use]
    pub const fn with_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// Overrides the severity (escalation or demotion).
    #[must_use]
    pub const fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Renders `severity[CODE] path[:line]: message` plus a hint line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = format!("{}[{}] {}", self.severity.label(), self.code, self.path);
        if let Some(line) = self.line {
            out.push_str(&format!(":{line}"));
        }
        out.push_str(&format!(": {}\n  hint: {}", self.message, self.code.hint()));
        out
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The aggregate outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in the order the checks emitted them.
    pub diagnostics: Vec<Diagnostic>,
    /// How many individual checks executed (for the summary line and the
    /// `mpt_lint_checks_total` counter).
    pub checks_run: u64,
}

impl Report {
    /// Appends another report's findings and check count.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
        self.checks_run += other.checks_run;
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.diagnostics.len() - self.errors() - self.infos()
    }

    /// Number of info-severity findings (positive certificates).
    #[must_use]
    pub fn infos(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Info)
            .count()
    }

    /// Process exit code: 0 clean (or warnings only), 1 on errors (or any
    /// warning under `deny_warnings`). Info-severity certificates never
    /// fail a run.
    #[must_use]
    pub fn exit_code(&self, deny_warnings: bool) -> i32 {
        let failing = if deny_warnings {
            self.errors() + self.warnings()
        } else {
            self.errors()
        };
        i32::from(failing > 0)
    }

    /// Human-readable rendering: one block per finding plus a summary.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_text());
            out.push('\n');
        }
        out.push_str(&format!(
            "mpt_lint: {} checks, {} errors, {} warnings",
            self.checks_run,
            self.errors(),
            self.warnings()
        ));
        if self.infos() > 0 {
            out.push_str(&format!(", {} certificates", self.infos()));
        }
        out
    }

    /// Machine-readable rendering, stable across releases:
    ///
    /// ```json
    /// {"version":1,"checks_run":n,"errors":e,"warnings":w,
    ///  "diagnostics":[{"code","severity","path","line","message","hint"}]}
    /// ```
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"checks_run\": {},\n", self.checks_run));
        out.push_str(&format!("  \"errors\": {},\n", self.errors()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings()));
        out.push_str(&format!("  \"infos\": {},\n", self.infos()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let line = d.line.map_or_else(|| "null".to_owned(), |l| l.to_string());
            out.push_str(&format!(
                "\n    {{\"code\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\", \"hint\": \"{}\"}}",
                d.code,
                d.severity.label(),
                json_escape(&d.path),
                line,
                json_escape(&d.message),
                json_escape(d.code.hint()),
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_ordered() {
        let codes: Vec<&str> = Code::ALL.iter().map(|c| c.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes.len(), sorted.len(), "duplicate code ids");
        assert_eq!(codes, sorted, "Code::ALL must be in numeric order");
    }

    #[test]
    fn text_rendering_includes_code_path_and_hint() {
        let d = Diagnostic::new(Code::DanglingControlSensor, "s.json", "no sensor 'x'");
        let text = d.render_text();
        assert!(
            text.contains("error[MPT104] s.json: no sensor 'x'"),
            "{text}"
        );
        assert!(text.contains("hint:"), "{text}");
    }

    #[test]
    fn json_rendering_is_parseable_and_escaped() {
        let mut report = Report {
            checks_run: 2,
            ..Report::default()
        };
        report
            .diagnostics
            .push(Diagnostic::new(Code::ParseFailure, "a\"b.json", "bad \"quote\"").with_line(3));
        let json = report.render_json();
        let value = serde_json::value_from_str(&json).expect("valid JSON");
        let obj = value.as_object().expect("object");
        let diags = serde::__find(obj, "diagnostics")
            .and_then(serde::Value::as_array)
            .expect("diagnostics array");
        assert_eq!(diags.len(), 1);
        let d = diags[0].as_object().expect("diagnostic object");
        assert_eq!(
            serde::__find(d, "code").and_then(serde::Value::as_str),
            Some("MPT101")
        );
        assert_eq!(
            serde::__find(d, "line").and_then(serde::Value::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn exit_codes_respect_deny_warnings() {
        let mut report = Report::default();
        assert_eq!(report.exit_code(false), 0);
        assert_eq!(report.exit_code(true), 0);
        report
            .diagnostics
            .push(Diagnostic::new(Code::NoStableFixedPoint, "p", "warn"));
        assert_eq!(report.exit_code(false), 0, "warnings alone pass");
        assert_eq!(report.exit_code(true), 1, "--deny-warnings fails them");
        report
            .diagnostics
            .push(Diagnostic::new(Code::NotHurwitz, "p", "err"));
        assert_eq!(report.exit_code(false), 1);
    }

    #[test]
    fn info_certificates_never_fail_and_count_separately() {
        let mut report = Report::default();
        report
            .diagnostics
            .push(Diagnostic::new(Code::NoTripCertificate, "s.json", "ok"));
        assert_eq!(report.infos(), 1);
        assert_eq!(report.warnings(), 0);
        assert_eq!(report.errors(), 0);
        assert_eq!(report.exit_code(false), 0);
        assert_eq!(
            report.exit_code(true),
            0,
            "--deny-warnings must not fail a positive certificate"
        );
        assert!(report.render_text().contains("1 certificates"));
        assert!(report.render_json().contains("\"infos\": 1"));
    }
}
