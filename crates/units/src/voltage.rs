//! Supply voltages.

use serde::{Deserialize, Serialize};

use crate::impl_f64_quantity;

/// A supply voltage in volts.
///
/// Operating points pair a frequency with the minimum stable supply
/// voltage; dynamic power scales with `V²·f` and leakage scales with `V`.
///
/// # Examples
///
/// ```
/// use mpt_units::Volts;
///
/// let v = Volts::new(1.1);
/// assert!((v.squared() - 1.21).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Volts(f64);

impl_f64_quantity!(Volts, "V");

impl Volts {
    /// `V²`, the factor entering the dynamic-power law.
    #[must_use]
    pub fn squared(self) -> f64 {
        self.0 * self.0
    }

    /// Converts to millivolts.
    #[must_use]
    pub fn to_millivolts(self) -> MilliVolts {
        MilliVolts::new(self.0 * 1e3)
    }
}

impl From<MilliVolts> for Volts {
    fn from(mv: MilliVolts) -> Self {
        mv.to_volts()
    }
}

/// A supply voltage in millivolts, the unit used by regulator data sheets.
///
/// # Examples
///
/// ```
/// use mpt_units::{MilliVolts, Volts};
///
/// assert_eq!(MilliVolts::new(912.5).to_volts(), Volts::new(0.9125));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MilliVolts(f64);

impl_f64_quantity!(MilliVolts, "mV");

impl MilliVolts {
    /// Converts to volts.
    #[must_use]
    pub fn to_volts(self) -> Volts {
        Volts::new(self.0 * 1e-3)
    }
}

impl From<Volts> for MilliVolts {
    fn from(v: Volts) -> Self {
        v.to_millivolts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip() {
        let v = Volts::new(1.2625);
        assert!((Volts::from(MilliVolts::from(v)).value() - 1.2625).abs() < 1e-12);
    }

    #[test]
    fn squared_is_nonnegative() {
        assert!(Volts::new(-0.5).squared() > 0.0);
    }

    proptest! {
        #[test]
        fn prop_round_trip(v in 0.0_f64..2.0) {
            let rt = Volts::from(Volts::new(v).to_millivolts());
            prop_assert!((rt.value() - v).abs() < 1e-9);
        }
    }
}
