//! Absolute temperatures in Kelvin and Celsius.

use serde::{Deserialize, Serialize};

use crate::impl_f64_quantity;

/// Conversion offset between the Kelvin and Celsius scales.
pub(crate) const KELVIN_OFFSET: f64 = 273.15;

/// An absolute temperature in Kelvin.
///
/// Kelvin is the base representation used by the thermal models (the
/// leakage law and the auxiliary-temperature transform are defined on an
/// absolute scale). Use [`Celsius`] at the user-facing edges.
///
/// # Examples
///
/// ```
/// use mpt_units::{Kelvin, Celsius};
///
/// let t = Kelvin::new(313.15);
/// assert_eq!(t.to_celsius(), Celsius::new(40.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Kelvin(f64);

impl_f64_quantity!(Kelvin, "K");

impl Kelvin {
    /// Standard laboratory ambient, 25 °C.
    pub const AMBIENT: Self = Self(25.0 + KELVIN_OFFSET);

    /// Converts to the Celsius scale.
    #[must_use]
    pub fn to_celsius(self) -> Celsius {
        Celsius::new(self.0 - KELVIN_OFFSET)
    }
}

impl From<Celsius> for Kelvin {
    fn from(c: Celsius) -> Self {
        c.to_kelvin()
    }
}

/// An absolute temperature in degrees Celsius.
///
/// # Examples
///
/// ```
/// use mpt_units::{Celsius, Kelvin};
///
/// let limit = Celsius::new(70.0);
/// assert_eq!(limit.to_kelvin(), Kelvin::new(343.15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Celsius(f64);

impl_f64_quantity!(Celsius, "°C");

impl Celsius {
    /// Converts to the Kelvin scale.
    #[must_use]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin::new(self.0 + KELVIN_OFFSET)
    }
}

impl From<Kelvin> for Celsius {
    fn from(k: Kelvin) -> Self {
        k.to_celsius()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_conversion() {
        let c = Celsius::new(36.6);
        let back: Celsius = c.to_kelvin().to_celsius();
        assert!((back.value() - 36.6).abs() < 1e-12);
    }

    #[test]
    fn ambient_constant_is_25c() {
        assert_eq!(Kelvin::AMBIENT.to_celsius(), Celsius::new(25.0));
    }

    #[test]
    fn ordering_is_preserved_across_scales() {
        let hot = Celsius::new(80.0);
        let cold = Celsius::new(20.0);
        assert!(hot > cold);
        assert!(hot.to_kelvin() > cold.to_kelvin());
    }

    #[test]
    fn temperature_differences() {
        let delta = Celsius::new(55.0) - Celsius::new(40.0);
        assert!((delta.value() - 15.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_kelvin_celsius_round_trip(v in -100.0_f64..300.0) {
            let c = Celsius::new(v);
            let rt = c.to_kelvin().to_celsius();
            prop_assert!((rt.value() - v).abs() < 1e-9);
        }

        #[test]
        fn prop_conversion_is_monotone(a in 0.0_f64..400.0, b in 0.0_f64..400.0) {
            let (ka, kb) = (Celsius::new(a).to_kelvin(), Celsius::new(b).to_kelvin());
            prop_assert_eq!(a < b, ka < kb);
        }
    }
}
