//! Simulation time quantities.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::impl_f64_quantity;

/// A time span in seconds.
///
/// Simulation timestamps and step sizes are `f64` seconds; conversions to
/// and from [`std::time::Duration`] are provided at the edges.
///
/// # Examples
///
/// ```
/// use mpt_units::Seconds;
/// use std::time::Duration;
///
/// let dt = Seconds::from_millis(100.0);
/// assert_eq!(dt, Seconds::new(0.1));
/// assert_eq!(Duration::from(dt), Duration::from_millis(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Seconds(f64);

impl_f64_quantity!(Seconds, "s");

impl Seconds {
    /// Creates a span from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self(ms * 1e-3)
    }

    /// The span in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Converts to the companion integer-millisecond type.
    #[must_use]
    pub fn to_millis_quantity(self) -> Millis {
        Millis::new(self.0 * 1e3)
    }
}

impl From<Duration> for Seconds {
    fn from(d: Duration) -> Self {
        Self(d.as_secs_f64())
    }
}

impl From<Seconds> for Duration {
    /// # Panics
    ///
    /// Panics if the span is negative or not finite (`Duration` cannot
    /// represent those).
    fn from(s: Seconds) -> Self {
        Duration::from_secs_f64(s.0)
    }
}

/// A time span in milliseconds (the paper's governor period is 100 ms and
/// its utilization window 1000 ms, so millisecond-denominated knobs are
/// common in configuration).
///
/// # Examples
///
/// ```
/// use mpt_units::{Millis, Seconds};
///
/// assert_eq!(Millis::new(100.0).to_seconds(), Seconds::new(0.1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Millis(f64);

impl_f64_quantity!(Millis, "ms");

impl Millis {
    /// Converts to seconds.
    #[must_use]
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.0 * 1e-3)
    }
}

impl From<Millis> for Seconds {
    fn from(m: Millis) -> Self {
        m.to_seconds()
    }
}

impl From<Seconds> for Millis {
    fn from(s: Seconds) -> Self {
        s.to_millis_quantity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn duration_round_trip() {
        let s = Seconds::new(2.5);
        assert_eq!(Seconds::from(Duration::from(s)), s);
    }

    #[test]
    fn millis_conversions() {
        assert_eq!(Seconds::from_millis(250.0).as_millis(), 250.0);
        assert_eq!(Seconds::from(Millis::new(100.0)), Seconds::new(0.1));
    }

    #[test]
    fn accumulating_steps() {
        let mut t = Seconds::ZERO;
        for _ in 0..10 {
            t += Seconds::from_millis(100.0);
        }
        assert!((t.value() - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_millis_round_trip(ms in 0.0_f64..1e6) {
            let rt = Millis::from(Seconds::from(Millis::new(ms)));
            prop_assert!((rt.value() - ms).abs() < 1e-6);
        }
    }
}
