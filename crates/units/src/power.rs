//! Electrical power quantities.

use serde::{Deserialize, Serialize};

use crate::{impl_f64_quantity, Joules, Seconds};

/// Power in watts.
///
/// This is the base power unit used throughout the workspace: component
/// power models produce watts, the thermal network consumes watts, and the
/// DAQ substrate samples watts.
///
/// # Examples
///
/// ```
/// use mpt_units::{Watts, Seconds, Joules};
///
/// let total: Watts = [Watts::new(1.2), Watts::new(0.8)].into_iter().sum();
/// assert_eq!(total, Watts::new(2.0));
/// assert_eq!(total * Seconds::new(3.0), Joules::new(6.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Watts(f64);

impl_f64_quantity!(Watts, "W");

impl Watts {
    /// Converts to milliwatts.
    #[must_use]
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts::new(self.0 * 1e3)
    }
}

impl core::ops::Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.0 * rhs.value())
    }
}

impl From<MilliWatts> for Watts {
    fn from(mw: MilliWatts) -> Self {
        mw.to_watts()
    }
}

/// Power in milliwatts, as reported by per-rail current sensors such as the
/// INA231 devices on the Odroid-XU3.
///
/// # Examples
///
/// ```
/// use mpt_units::{MilliWatts, Watts};
///
/// assert_eq!(MilliWatts::new(1500.0).to_watts(), Watts::new(1.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MilliWatts(f64);

impl_f64_quantity!(MilliWatts, "mW");

impl MilliWatts {
    /// Converts to watts.
    #[must_use]
    pub fn to_watts(self) -> Watts {
        Watts::new(self.0 * 1e-3)
    }
}

impl From<Watts> for MilliWatts {
    fn from(w: Watts) -> Self {
        w.to_milliwatts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn watts_milliwatts_round_trip() {
        let w = Watts::new(3.65);
        assert!((Watts::from(MilliWatts::from(w)).value() - 3.65).abs() < 1e-12);
    }

    #[test]
    fn power_times_time_is_energy() {
        assert_eq!(Watts::new(5.5) * Seconds::new(2.0), Joules::new(11.0));
    }

    #[test]
    fn summing_rail_powers() {
        let rails = [
            Watts::new(0.9),
            Watts::new(1.4),
            Watts::new(1.1),
            Watts::new(0.25),
        ];
        let total: Watts = rails.iter().sum();
        assert!((total.value() - 3.65).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_scaling_distributes_over_sum(a in 0.0_f64..100.0, b in 0.0_f64..100.0, k in 0.0_f64..10.0) {
            let lhs = (Watts::new(a) + Watts::new(b)) * k;
            let rhs = Watts::new(a) * k + Watts::new(b) * k;
            prop_assert!((lhs.value() - rhs.value()).abs() < 1e-9);
        }
    }
}
