#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Typed physical quantities for mobile power/thermal simulation.
//!
//! Every quantity that crosses a crate boundary in this workspace is a
//! newtype over `f64` (or `u64` for discrete frequencies) so that a power
//! value can never be confused with a temperature or a frequency
//! (C-NEWTYPE). The types implement the arithmetic that is physically
//! meaningful and nothing more: you can add two [`Watts`], scale them by a
//! dimensionless factor, multiply power by time to get [`Joules`] — but you
//! cannot add [`Watts`] to [`Celsius`].
//!
//! # Examples
//!
//! ```
//! use mpt_units::{Celsius, Kelvin, Watts, Seconds, Joules};
//!
//! let limit = Celsius::new(70.0);
//! let ambient: Kelvin = Celsius::new(25.0).into();
//! assert!(ambient < limit.to_kelvin());
//!
//! let energy: Joules = Watts::new(2.5) * Seconds::new(4.0);
//! assert_eq!(energy, Joules::new(10.0));
//! ```

mod energy;
mod frequency;
mod power;
mod rate;
mod temperature;
mod time;
mod voltage;

pub use energy::Joules;
pub use frequency::{Hertz, KiloHertz, MegaHertz};
pub use power::{MilliWatts, Watts};
pub use rate::{Fps, Ratio};
pub use temperature::{Celsius, Kelvin};
pub use time::{Millis, Seconds};
pub use voltage::{MilliVolts, Volts};

/// Implements the standard arithmetic surface shared by all `f64`-backed
/// quantity newtypes: same-type addition/subtraction, scalar
/// multiplication/division, `Sum` and `Display`.
macro_rules! impl_f64_quantity {
    ($ty:ident, $unit:literal) => {
        impl $ty {
            /// Creates a new quantity from a raw value in base units.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in base units.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the larger of `self` and `other`.
            ///
            /// NaN values are treated as smaller than any number.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            ///
            /// NaN values are treated as larger than any number.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl core::ops::Add for $ty {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $ty {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $ty {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $ty {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $ty {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$ty> for f64 {
            type Output = $ty;
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $ty {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $ty {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $ty {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $ty> for $ty {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $ty {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl From<f64> for $ty {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }
    };
}

pub(crate) use impl_f64_quantity;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantities_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Kelvin>();
        assert_send_sync::<Celsius>();
        assert_send_sync::<Watts>();
        assert_send_sync::<Hertz>();
        assert_send_sync::<Volts>();
        assert_send_sync::<Seconds>();
        assert_send_sync::<Joules>();
        assert_send_sync::<Fps>();
        assert_send_sync::<Ratio>();
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(format!("{:.1}", Watts::new(2.25)), "2.2 W");
        assert_eq!(format!("{:.2}", Celsius::new(40.0)), "40.00 °C");
        assert_eq!(format!("{}", Hertz::new(600_000_000)), "600 MHz");
    }
}
