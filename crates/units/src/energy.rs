//! Energy quantities.

use serde::{Deserialize, Serialize};

use crate::{impl_f64_quantity, Seconds, Watts};

/// Energy in joules.
///
/// Produced by integrating power over time; the DAQ substrate accumulates
/// joules per rail so experiments can report energy as well as power.
///
/// # Examples
///
/// ```
/// use mpt_units::{Joules, Watts, Seconds};
///
/// let e = Watts::new(3.65) * Seconds::new(10.0);
/// assert_eq!(e, Joules::new(36.5));
/// assert_eq!(e.average_power(Seconds::new(10.0)), Watts::new(3.65));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Joules(f64);

impl_f64_quantity!(Joules, "J");

impl Joules {
    /// The average power over a window of length `dt`.
    ///
    /// Returns [`Watts::ZERO`] for an empty window, so callers can fold an
    /// incrementally built energy total without special-casing start-up.
    #[must_use]
    pub fn average_power(self, dt: Seconds) -> Watts {
        if dt.value() <= 0.0 {
            Watts::ZERO
        } else {
            Watts::new(self.0 / dt.value())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn average_power_of_empty_window_is_zero() {
        assert_eq!(Joules::new(5.0).average_power(Seconds::ZERO), Watts::ZERO);
    }

    #[test]
    fn integrating_then_averaging_recovers_power() {
        let p = Watts::new(2.0);
        let e = p * Seconds::new(4.0);
        assert_eq!(e.average_power(Seconds::new(4.0)), p);
    }

    proptest! {
        #[test]
        fn prop_energy_additivity(p in 0.0_f64..10.0, t1 in 0.001_f64..100.0, t2 in 0.001_f64..100.0) {
            let whole = Watts::new(p) * Seconds::new(t1 + t2);
            let split = Watts::new(p) * Seconds::new(t1) + Watts::new(p) * Seconds::new(t2);
            prop_assert!((whole.value() - split.value()).abs() < 1e-9);
        }
    }
}
