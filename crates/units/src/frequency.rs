//! Clock frequencies.
//!
//! Operating-point frequencies on mobile SoCs are discrete values published
//! by the vendor (e.g. the Adreno 430 steps 180/305/390/450/510/600 MHz), so
//! [`Hertz`] is backed by an integer: two operating points are either the
//! same frequency or they are not, and frequencies are usable as map keys.

use serde::{Deserialize, Serialize};

/// A clock frequency in hertz, backed by `u64`.
///
/// # Examples
///
/// ```
/// use mpt_units::Hertz;
///
/// let f = Hertz::from_mhz(600);
/// assert_eq!(f.as_mhz(), 600);
/// assert_eq!(format!("{f}"), "600 MHz");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Hertz(u64);

impl Hertz {
    /// The zero frequency (a powered-off component).
    pub const ZERO: Self = Self(0);

    /// Creates a frequency from a raw hertz count.
    #[must_use]
    pub const fn new(hz: u64) -> Self {
        Self(hz)
    }

    /// Creates a frequency from a megahertz count.
    #[must_use]
    pub const fn from_mhz(mhz: u64) -> Self {
        Self(mhz * 1_000_000)
    }

    /// Creates a frequency from a kilohertz count (the unit used by the
    /// Linux cpufreq sysfs interface).
    #[must_use]
    pub const fn from_khz(khz: u64) -> Self {
        Self(khz * 1_000)
    }

    /// Raw value in hertz.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Whole megahertz (truncating).
    #[must_use]
    pub const fn as_mhz(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole kilohertz (truncating), for sysfs-style interfaces.
    #[must_use]
    pub const fn as_khz(self) -> u64 {
        self.0 / 1_000
    }

    /// Frequency as a floating-point hertz value, for power/cycle math.
    #[must_use]
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Cycles elapsed in `dt` seconds at this frequency.
    #[must_use]
    pub fn cycles_in(self, dt: crate::Seconds) -> f64 {
        self.as_f64() * dt.value()
    }

    /// Returns the ratio `self / other` as a dimensionless `f64`.
    ///
    /// Returns 0.0 when `other` is zero.
    #[must_use]
    pub fn ratio_of(self, other: Self) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.as_f64() / other.as_f64()
        }
    }
}

impl core::fmt::Display for Hertz {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{} MHz", self.as_mhz())
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{} kHz", self.as_khz())
        } else {
            write!(f, "{} Hz", self.0)
        }
    }
}

/// A frequency expressed in megahertz; a convenience wrapper for building
/// OPP tables from vendor data sheets.
///
/// # Examples
///
/// ```
/// use mpt_units::{MegaHertz, Hertz};
///
/// assert_eq!(Hertz::from(MegaHertz::new(510)), Hertz::from_mhz(510));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct MegaHertz(u64);

impl MegaHertz {
    /// Creates a megahertz value.
    #[must_use]
    pub const fn new(mhz: u64) -> Self {
        Self(mhz)
    }

    /// Raw megahertz count.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl From<MegaHertz> for Hertz {
    fn from(m: MegaHertz) -> Self {
        Hertz::from_mhz(m.0)
    }
}

impl core::fmt::Display for MegaHertz {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} MHz", self.0)
    }
}

/// A frequency expressed in kilohertz; the native unit of Linux cpufreq.
///
/// # Examples
///
/// ```
/// use mpt_units::{KiloHertz, Hertz};
///
/// assert_eq!(Hertz::from(KiloHertz::new(384_000)), Hertz::from_mhz(384));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct KiloHertz(u64);

impl KiloHertz {
    /// Creates a kilohertz value.
    #[must_use]
    pub const fn new(khz: u64) -> Self {
        Self(khz)
    }

    /// Raw kilohertz count.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl From<KiloHertz> for Hertz {
    fn from(k: KiloHertz) -> Self {
        Hertz::from_khz(k.0)
    }
}

impl From<Hertz> for KiloHertz {
    fn from(h: Hertz) -> Self {
        KiloHertz::new(h.as_khz())
    }
}

impl core::fmt::Display for KiloHertz {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} kHz", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Seconds;
    use proptest::prelude::*;

    #[test]
    fn mhz_khz_constructors_agree() {
        assert_eq!(Hertz::from_mhz(960), Hertz::from_khz(960_000));
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(Hertz::from_mhz(180).to_string(), "180 MHz");
        assert_eq!(Hertz::from_khz(32).to_string(), "32 kHz");
        assert_eq!(Hertz::new(7).to_string(), "7 Hz");
    }

    #[test]
    fn cycles_in_window() {
        // 600 MHz for 10 ms => 6 million cycles.
        let c = Hertz::from_mhz(600).cycles_in(Seconds::new(0.01));
        assert!((c - 6.0e6).abs() < 1e-3);
    }

    #[test]
    fn ratio_of_zero_is_zero() {
        assert_eq!(Hertz::from_mhz(100).ratio_of(Hertz::ZERO), 0.0);
    }

    #[test]
    fn frequencies_order() {
        let mut opps = vec![
            Hertz::from_mhz(510),
            Hertz::from_mhz(180),
            Hertz::from_mhz(390),
        ];
        opps.sort();
        assert_eq!(
            opps,
            vec![
                Hertz::from_mhz(180),
                Hertz::from_mhz(390),
                Hertz::from_mhz(510)
            ]
        );
    }

    proptest! {
        #[test]
        fn prop_ratio_inverse(a in 1_u64..5_000, b in 1_u64..5_000) {
            let (fa, fb) = (Hertz::from_mhz(a), Hertz::from_mhz(b));
            let product = fa.ratio_of(fb) * fb.ratio_of(fa);
            prop_assert!((product - 1.0).abs() < 1e-9);
        }
    }
}
