//! Dimensionless rates: frame rates and utilization ratios.

use serde::{Deserialize, Serialize};

use crate::impl_f64_quantity;

/// A frame rate in frames per second.
///
/// The paper's headline metric (Tables I and II) is the median FPS achieved
/// by each application with and without thermal throttling.
///
/// # Examples
///
/// ```
/// use mpt_units::Fps;
///
/// let before = Fps::new(35.0);
/// let after = Fps::new(23.0);
/// assert!((before.reduction_percent(after) - 34.285).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Fps(f64);

impl_f64_quantity!(Fps, "FPS");

impl Fps {
    /// Percentage reduction from `self` to `after`, as reported in the
    /// paper's Table I ("Percentage Reduction" column).
    ///
    /// Returns 0.0 when `self` is zero.
    #[must_use]
    pub fn reduction_percent(self, after: Fps) -> f64 {
        if self.0 <= 0.0 {
            0.0
        } else {
            (self.0 - after.0) / self.0 * 100.0
        }
    }

    /// The frame period, in seconds, for this rate.
    ///
    /// Returns `f64::INFINITY` for a zero rate.
    #[must_use]
    pub fn frame_period(self) -> crate::Seconds {
        crate::Seconds::new(1.0 / self.0)
    }
}

/// A dimensionless ratio clamped to `[0, 1]`, used for utilizations, duty
/// cycles and residency fractions.
///
/// The constructor saturates rather than panicking: utilization estimates
/// from noisy sampled data may slightly overshoot 1.0 and should be treated
/// as "fully busy" rather than poisoning downstream math.
///
/// # Examples
///
/// ```
/// use mpt_units::Ratio;
///
/// assert_eq!(Ratio::new(1.7), Ratio::ONE);
/// assert_eq!(Ratio::new(-0.2), Ratio::ZERO);
/// assert_eq!(Ratio::new(0.32).as_percent(), 32.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Ratio(f64);

impl Ratio {
    /// The empty ratio.
    pub const ZERO: Self = Self(0.0);
    /// The full ratio.
    pub const ONE: Self = Self(1.0);

    /// Creates a ratio, saturating into `[0, 1]`. NaN becomes 0.
    #[must_use]
    pub fn new(value: f64) -> Self {
        if value.is_nan() {
            Self(0.0)
        } else {
            Self(value.clamp(0.0, 1.0))
        }
    }

    /// Creates a ratio from a percentage in `[0, 100]`, saturating.
    #[must_use]
    pub fn from_percent(pct: f64) -> Self {
        Self::new(pct / 100.0)
    }

    /// The raw fraction in `[0, 1]`.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The ratio expressed as a percentage in `[0, 100]`.
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// The complementary ratio `1 - self`.
    #[must_use]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }

    /// Saturating addition of two ratios.
    #[must_use]
    pub fn saturating_add(self, other: Self) -> Self {
        Self::new(self.0 + other.0)
    }

    /// Product of two ratios (always stays in `[0, 1]`).
    #[must_use]
    pub fn product(self, other: Self) -> Self {
        Self(self.0 * other.0)
    }
}

impl core::fmt::Display for Ratio {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}%", prec, self.as_percent())
        } else {
            write!(f, "{}%", self.as_percent())
        }
    }
}

impl From<f64> for Ratio {
    fn from(value: f64) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reduction_matches_paper_table1() {
        // Paper.io: 35 -> 23 FPS is reported as 34%.
        let r = Fps::new(35.0).reduction_percent(Fps::new(23.0));
        assert_eq!(r.round() as i64, 34);
        // Stickman Hook: 59 -> 40 FPS is reported as 32%.
        let r = Fps::new(59.0).reduction_percent(Fps::new(40.0));
        assert_eq!(r.round() as i64, 32);
        // Amazon: 35 -> 28 FPS is reported as 20%.
        let r = Fps::new(35.0).reduction_percent(Fps::new(28.0));
        assert_eq!(r.round() as i64, 20);
        // Hangouts: 42 -> 38 FPS is reported as 10%.
        let r = Fps::new(42.0).reduction_percent(Fps::new(38.0));
        assert_eq!(r.round() as i64, 10);
        // Facebook: 35 -> 24 FPS is reported as 31%.
        let r = Fps::new(35.0).reduction_percent(Fps::new(24.0));
        assert_eq!(r.round() as i64, 31);
    }

    #[test]
    fn reduction_of_zero_baseline_is_zero() {
        assert_eq!(Fps::ZERO.reduction_percent(Fps::new(10.0)), 0.0);
    }

    #[test]
    fn frame_period_inverts_rate() {
        let p = Fps::new(60.0).frame_period();
        assert!((p.value() - 1.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_saturates() {
        assert_eq!(Ratio::new(2.0), Ratio::ONE);
        assert_eq!(Ratio::new(-1.0), Ratio::ZERO);
        assert_eq!(Ratio::new(f64::NAN), Ratio::ZERO);
    }

    #[test]
    fn ratio_display() {
        assert_eq!(format!("{:.0}", Ratio::new(0.67)), "67%");
    }

    #[test]
    fn complement_and_percent() {
        let r = Ratio::from_percent(38.0);
        assert!((r.complement().as_percent() - 62.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_ratio_always_in_unit_interval(v in -10.0_f64..10.0) {
            let r = Ratio::new(v);
            prop_assert!((0.0..=1.0).contains(&r.value()));
        }

        #[test]
        fn prop_complement_involutive(v in 0.0_f64..1.0) {
            let r = Ratio::new(v);
            prop_assert!((r.complement().complement().value() - r.value()).abs() < 1e-12);
        }

        #[test]
        fn prop_product_bounded_by_factors(a in 0.0_f64..1.0, b in 0.0_f64..1.0) {
            let p = Ratio::new(a).product(Ratio::new(b));
            prop_assert!(p.value() <= a.min(b) + 1e-12);
        }
    }
}
