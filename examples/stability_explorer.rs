//! Explore the power–temperature stability analysis (paper Section IV-A,
//! Figure 7): sweep the power level and report fixed points, the critical
//! power, and time-to-violation estimates.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example stability_explorer
//! ```

use mobile_thermal::thermal::{LumpedModel, Stability};
use mobile_thermal::units::{Kelvin, Seconds, Watts};

fn main() {
    let model = LumpedModel::odroid_xu3();
    println!(
        "Odroid-XU3 lumped model: T_amb {:.1}, R {:.1} K/W, beta {:.0} K, tau {:.0} s",
        model.t_ambient().to_celsius(),
        model.r_th(),
        model.beta(),
        model.tau().value()
    );
    println!("critical power: {:.2}\n", model.critical_power());

    println!(
        "{:>7} | {:>14} | {:>16} | {:>12}",
        "power", "stable point", "unstable point", "class"
    );
    println!("{}", "-".repeat(60));
    let mut p = 0.5;
    while p <= 8.01 {
        let power = Watts::new(p);
        match model.stability(power) {
            Stability::Stable(fp) => println!(
                "{:>6.1} W | {:>12.1} C | {:>14.1} C | stable",
                p,
                fp.stable.to_celsius().value(),
                fp.unstable.to_celsius().value()
            ),
            Stability::CriticallyStable { point } => println!(
                "{:>6.1} W | {:>12.1} C | {:>14} | critical",
                p,
                point.to_celsius().value(),
                "(merged)"
            ),
            Stability::Runaway => {
                println!("{:>6.1} W | {:>12} | {:>14} | RUNAWAY", p, "-", "-");
            }
        }
        p += 0.5;
    }

    // Time-to-violation: how long until a 95 C limit is crossed, per
    // power level, starting from a warm 60 C board — the quantity the
    // application-aware governor compares with its horizon.
    println!("\ntime for a 60 C board to cross 95 C:");
    let start = Kelvin::new(273.15 + 60.0);
    let limit = Kelvin::new(273.15 + 95.0);
    for p in [3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0] {
        match model.time_to_reach(start, limit, Watts::new(p), Seconds::new(3600.0)) {
            Some(t) => println!("  {p:.1} W -> {:.0} s", t.value()),
            None => println!("  {p:.1} W -> never (fixed point below the limit)"),
        }
    }
}
