//! Parallel design-space exploration over the thermal-policy knobs.
//!
//! The paper belongs to the DATE 2019 special session on "Smart Resource
//! Management and Design Space Exploration for Heterogeneous Processors";
//! this example shows the exploration workflow the library enables: a
//! [`CampaignSpec`] sweeps IPA's sustainable power over the 3DMark+BML
//! scenario, the campaign layer fans the cells out across worker threads
//! (cell seeds are fixed at expansion time, so the frontier is identical
//! at any worker count), and the frontier is compared against the single
//! point the application-aware governor achieves.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example dse_sweep
//! ```

use std::time::Instant;

use mobile_thermal::core::campaign::run_parallel;
use mobile_thermal::core::scenario::{
    build_scenario, AppAwareSpec, CampaignSpec, PlatformSpec, ScenarioSpec, SweepAxes,
    ThermalPolicySpec, WorkloadKind, WorkloadSpec,
};
use mobile_thermal::units::Seconds;
use mobile_thermal::workloads::benchmarks::ThreeDMark;

/// Runs a spec and extracts (GT1, GT2, peak C, avg W).
fn run(spec: &ScenarioSpec) -> Result<(f64, f64, f64, f64), Box<dyn std::error::Error>> {
    let (mut sim, _stats) = build_scenario(spec)?;
    sim.run_for(Seconds::new(spec.duration_s))?;
    let pid = sim.pid_of("3DMark").expect("attached");
    let bench = sim.workload_as::<ThreeDMark>(pid).expect("type");
    Ok((
        bench.gt1_fps().unwrap_or(0.0),
        bench.gt2_fps().unwrap_or(0.0),
        sim.telemetry().max_temperature().max().unwrap_or(f64::NAN),
        sim.telemetry().average_total_power().value(),
    ))
}

fn base_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            kind: WorkloadKind::ThreeDMark {
                test_duration_s: 60.0,
            },
            cluster: Default::default(),
            foreground: true,
            realtime: true,
            seed: 1,
        },
        WorkloadSpec {
            kind: WorkloadKind::BasicMath,
            cluster: Default::default(),
            foreground: false,
            realtime: false,
            seed: 1,
        },
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("3DMark + BML on the Odroid-XU3, 120 s, board pre-warmed to 50 C\n");

    // The baseline frontier as a campaign: IPA at different
    // sustainable-power settings, expanded up front, executed in
    // parallel.
    let campaign = CampaignSpec {
        base: ScenarioSpec {
            platform: PlatformSpec::Exynos5422,
            duration_s: 120.0,
            initial_temperature_c: Some(50.0),
            thermal: ThermalPolicySpec::Disabled,
            app_aware: None,
            alerts: Vec::new(),
            queries: Vec::new(),
            solver: Default::default(),
            engine: Default::default(),
            control_sensor: None,
            workloads: base_workloads(),
        },
        sweep: SweepAxes {
            thermal: [2.0, 2.6, 3.2, 3.8]
                .iter()
                .map(|&sustainable_w| ThermalPolicySpec::Ipa {
                    control_c: 95.0,
                    sustainable_w,
                    gpu_weight: 1.2,
                })
                .collect(),
            ..SweepAxes::default()
        },
        queries: Vec::new(),
        seed: 0,
        fleet: None,
    };
    let cells = campaign.expand()?;
    let start = Instant::now();
    // The GT1/GT2 split needs the concrete benchmark object, so this uses
    // the campaign layer's `run_parallel` escape hatch instead of
    // `run_campaign` (which summarizes to `ScenarioOutcome`).
    let frontier = run_parallel(cells.len(), 0, |i| run(&cells[i].scenario).ok());
    let frontier_elapsed = start.elapsed().as_secs_f64();
    println!(
        "{:<34} {:>8} {:>8} {:>12} {:>12}",
        "policy", "GT1", "GT2", "peak temp", "avg power"
    );
    println!("{}", "-".repeat(78));
    for (cell, result) in cells.iter().zip(&frontier) {
        let (gt1, gt2, peak, power) = result.expect("cell runs");
        println!(
            "{:<34} {:>8.0} {:>8.0} {:>11.1}C {:>11.2}W",
            cell.label, gt1, gt2, peak, power,
        );
    }

    // The proposed governor: one point that dominates the frontier for
    // the foreground app (it pays with background-app throughput, which
    // IPA's whole-system caps preserve better).
    let spec = ScenarioSpec {
        platform: PlatformSpec::Exynos5422,
        duration_s: 120.0,
        initial_temperature_c: Some(50.0),
        thermal: ThermalPolicySpec::Disabled,
        app_aware: Some(AppAwareSpec {
            limit_c: 95.0,
            horizon_s: 60.0,
            cap_instead_of_migrate: false,
        }),
        alerts: Vec::new(),
        queries: Vec::new(),
        solver: Default::default(),
        engine: Default::default(),
        control_sensor: None,
        workloads: base_workloads(),
    };
    let (gt1, gt2, peak, power) = run(&spec)?;
    println!(
        "{:<34} {:>8.0} {:>8.0} {:>11.1}C {:>11.2}W   <- proposed",
        "app-aware migration, limit 95 C", gt1, gt2, peak, power,
    );
    println!(
        "\n({} frontier cells in {:.2} s wall clock, one worker per CPU)",
        cells.len(),
        frontier_elapsed,
    );
    println!(
        "(the proposed governor sits off the IPA frontier: foreground FPS of the most\n permissive IPA setting at the peak temperature of a much stricter one)"
    );
    Ok(())
}
