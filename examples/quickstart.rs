//! Quickstart: simulate a game on a Nexus 6P-class phone, watch it heat
//! up, then enable the stock thermal governor and compare.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mobile_thermal::kernel::{ProcessClass, StepWiseGovernor, TripPoint};
use mobile_thermal::sim::SimBuilder;
use mobile_thermal::soc::{platforms, ComponentId};
use mobile_thermal::units::{Celsius, Seconds};
use mobile_thermal::workloads::apps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A platform model: the Snapdragon 810 as shipped in the Nexus 6P.
    let soc = platforms::snapdragon_810();
    println!("platform: {}", soc.name());
    for c in soc.components() {
        println!(
            "  {:<7} {:<12} {} cores, {}..{}",
            c.id().to_string(),
            c.name(),
            c.core_count(),
            c.opps().lowest().frequency(),
            c.opps().highest().frequency(),
        );
    }

    // 2. Run Paper.io for two simulated minutes without thermal limits.
    let mut free = SimBuilder::new(soc.clone())
        .attach(
            Box::new(apps::paper_io(42)),
            ProcessClass::Foreground,
            ComponentId::BigCluster,
        )
        .initial_temperature(Celsius::new(35.0))
        .control_sensor("package")
        .build()?;
    free.run_for(Seconds::new(120.0))?;
    let fps_free = free
        .median_fps(free.pid_of("Paper.io").expect("attached"))
        .unwrap_or(0.0);
    println!(
        "\nwithout throttling: package {:.1}, median {fps_free:.0} FPS",
        free.temperature_of("package")?
    );

    // 3. Same game, stock step-wise thermal governor enabled.
    let governed = vec![
        (soc.component(ComponentId::Gpu)?.clone(), 3),
        (soc.component(ComponentId::BigCluster)?.clone(), 5),
    ];
    let mut throttled = SimBuilder::new(soc)
        .attach(
            Box::new(apps::paper_io(42)),
            ProcessClass::Foreground,
            ComponentId::BigCluster,
        )
        .thermal_governor(Box::new(StepWiseGovernor::with_state_limits(
            vec![
                TripPoint::new(Celsius::new(41.0), Celsius::new(1.5)),
                TripPoint::new(Celsius::new(44.0), Celsius::new(1.5)),
            ],
            governed,
        )))
        .thermal_period(Seconds::new(1.0))
        .initial_temperature(Celsius::new(35.0))
        .control_sensor("package")
        .build()?;
    throttled.run_for(Seconds::new(120.0))?;
    let fps_thr = throttled
        .median_fps(throttled.pid_of("Paper.io").expect("attached"))
        .unwrap_or(0.0);
    println!(
        "with throttling:    package {:.1}, median {fps_thr:.0} FPS",
        throttled.temperature_of("package")?
    );

    // 4. The paper's observation in one line.
    println!(
        "\nthermal throttling kept the phone cooler but cost {:.0}% of the frame rate",
        (fps_free - fps_thr) / fps_free * 100.0
    );

    // 5. The control plane is a real sysfs tree.
    let khz: u64 = throttled
        .sysfs()
        .read_parsed("/sys/class/devfreq/gpu/scaling_max_freq")?;
    println!("gpu scaling_max_freq after the run: {khz} kHz");

    // 6. And every joule came out of a battery: the Nexus 6P ships
    // 3450 mAh at 3.82 V.
    use mobile_thermal::soc::Battery;
    use mobile_thermal::units::Joules;
    let mut battery = Battery::new_mah(3450.0, 3.82);
    battery.drain(Joules::new(free.telemetry().total_energy()));
    let tte = battery
        .time_to_empty(free.telemetry().average_total_power())
        .expect("nonzero draw");
    println!(
        "battery after 2 min of unthrottled gaming: {:.1}% ({:.1} h left at this draw)",
        battery.remaining_fraction() * 100.0,
        tte.value() / 3600.0
    );
    Ok(())
}
