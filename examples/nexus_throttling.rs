//! The paper's Nexus 6P case study for one app: temperature profile
//! (Figures 1/3/5) and GPU/CPU frequency residency (Figures 2/4/6), with
//! and without the stock thermal governor.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example nexus_throttling [paper_io|stickman|amazon|hangouts|facebook]
//! ```

use std::collections::BTreeMap;

use mobile_thermal::core::experiments::{nexus_run, NexusApp};
use mobile_thermal::daq::chart;
use mobile_thermal::units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "paper_io".to_owned());
    let app = match which.as_str() {
        "paper_io" => NexusApp::PaperIo,
        "stickman" => NexusApp::StickmanHook,
        "amazon" => NexusApp::Amazon,
        "hangouts" => NexusApp::GoogleHangouts,
        "facebook" => NexusApp::Facebook,
        other => {
            eprintln!("unknown app {other:?}; use paper_io|stickman|amazon|hangouts|facebook");
            std::process::exit(2);
        }
    };

    println!(
        "running {} for 140 s, twice (throttling off / on)...",
        app.name()
    );
    let without = nexus_run(app, false, 42, Seconds::new(140.0))?;
    let with = nexus_run(app, true, 42, Seconds::new(140.0))?;

    println!("\nTemperature profile ({}):", app.name());
    print!(
        "{}",
        chart::line_chart(&[&without.package_temp, &with.package_temp], 70, 14)
    );
    println!("          (* = without throttling, + = with throttling)");

    let to_labels = |r: &mobile_thermal::daq::Residency| -> BTreeMap<String, f64> {
        r.percentages()
            .into_iter()
            .map(|(f, pct)| (format!("{:>4} MHz", f.as_mhz()), pct))
            .collect()
    };

    // CPU-heavy apps show the big-cluster residency (paper Fig. 6),
    // GPU-heavy ones the GPU residency (paper Figs. 2/4).
    let cpu_heavy = matches!(app, NexusApp::Amazon | NexusApp::GoogleHangouts);
    let (res_free, res_thr, which_unit) = if cpu_heavy {
        (&without.big_residency, &with.big_residency, "big-core")
    } else {
        (&without.gpu_residency, &with.gpu_residency, "GPU")
    };
    println!("\n{which_unit} frequency residency WITHOUT throttling:");
    print!("{}", chart::bar_chart(&to_labels(res_free), 40));
    println!("\n{which_unit} frequency residency WITH throttling:");
    print!("{}", chart::bar_chart(&to_labels(res_thr), 40));

    println!(
        "\nmedian frame rate: {:.0} FPS -> {:.0} FPS ({:.0}% reduction)",
        without.median_fps,
        with.median_fps,
        (without.median_fps - with.median_fps) / without.median_fps * 100.0
    );
    Ok(())
}
