//! The paper's Odroid-XU3 case study: 3DMark with a background
//! `basicmath_large` under the stock kernel policy versus the proposed
//! application-aware governor (Figures 8–9, Table II).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example odroid_appaware
//! ```

use mobile_thermal::core::experiments::{threedmark_run, OdroidScenario};
use mobile_thermal::daq::chart;
use mobile_thermal::workloads::benchmarks::BasicMathLarge;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The background load is real computation: run one genuine MiBench
    // basicmath iteration to show what the simulated process stands for.
    let bml = BasicMathLarge::new();
    println!(
        "basicmath_large iteration checksum: {:.6} (cubic roots + usqrt + deg/rad)",
        bml.run_real_iteration(1)
    );

    println!("\nrunning the three 250 s scenarios (this takes a moment)...");
    let runs: Vec<_> = OdroidScenario::ALL
        .iter()
        .map(|&s| threedmark_run(s, 1))
        .collect::<Result<_, _>>()?;

    println!("\nMaximum temperature (paper Figure 8):");
    let series: Vec<&mobile_thermal::daq::TimeSeries> = runs.iter().map(|r| &r.max_temp).collect();
    print!("{}", chart::line_chart(&series, 72, 16));
    println!("          (* = 3DMark, + = 3DMark+BML, o = proposed control)");

    println!("\nPower distribution (paper Figure 9):");
    for run in &runs {
        print!("{}", chart::share_table(run.scenario.label(), &run.shares));
    }

    println!("Application performance (paper Table II):");
    println!(
        "{:<14} {:>12} {:>12} {:>24}",
        "Test", "App. Alone", "App. + BML", "App.+BML w/ Proposed"
    );
    let fps = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |f| format!("{f:.0} FPS"));
    println!(
        "{:<14} {:>12} {:>12} {:>24}",
        "3DMark GT1",
        fps(runs[0].gt1),
        fps(runs[1].gt1),
        fps(runs[2].gt1)
    );
    println!(
        "{:<14} {:>12} {:>12} {:>24}",
        "3DMark GT2",
        fps(runs[0].gt2),
        fps(runs[1].gt2),
        fps(runs[2].gt2)
    );
    println!(
        "\nproposed governor migrations: {} (first at {}; the background app moved to the\nlittle cluster; the foreground benchmark was never touched)",
        runs[2].migrations,
        runs[2]
            .first_migration
            .map_or_else(|| "-".to_owned(), |t| format!("{:.1} s", t.value()))
    );
    Ok(())
}
